package fleet

import (
	"bytes"
	"fmt"
	"testing"
)

// feeSweepOpts is the canonical fee-market population used across these
// tests, in isolated or arena mode.
func feeSweepOpts(deals, workers int, arena bool) Options {
	opts := Options{
		Deals:   deals,
		Workers: workers,
		Gen: GenOptions{
			Seed:          7,
			Protocol:      "mixed",
			AdversaryRate: 0.35,
			Fees:          &FeeOptions{BaseFee: 100, TipBudget: 400},
		},
	}
	if arena {
		opts.Arena = &ArenaOptions{DealsPerArena: 20, Chains: 3}
	}
	return opts
}

func renderedFeeReport(t *testing.T, opts Options) string {
	t.Helper()
	rep, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFleetFeeMarketDeterministicAcrossWorkerCounts: fee-market sweeps
// keep the fleet's reproducibility contract — the report (including the
// ordering-games block, fee ledgers, and tip-decile table) is
// byte-identical at every worker count, in both isolated and arena
// mode. Run under -race this also exercises the fee plumbing for data
// races.
func TestFleetFeeMarketDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, mode := range []struct {
		name  string
		arena bool
	}{{"isolated", false}, {"arena", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			deals := 60
			if testing.Short() {
				deals = 20 // equality check only: scale the sweep, keep the pool racing
			}
			want := renderedFeeReport(t, feeSweepOpts(deals, 1, mode.arena))
			for _, workers := range []int{4, 16} {
				if got := renderedFeeReport(t, feeSweepOpts(deals, workers, mode.arena)); got != want {
					t.Fatalf("%s fee-market report at %d workers diverges from serial run:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
						mode.name, workers, want, workers, got)
				}
			}
		})
	}
}

// TestFleetFeeMarketOrderingGamesBlock: the ordering-games block
// appears in both isolated and arena fee-market sweeps — with live fee
// ledgers and a tip-decile table — and never appears without
// -feemarket.
func TestFleetFeeMarketOrderingGamesBlock(t *testing.T) {
	for _, mode := range []struct {
		name  string
		arena bool
	}{{"isolated", false}, {"arena", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			rep, err := Sweep(feeSweepOpts(60, 4, mode.arena))
			if err != nil {
				t.Fatal(err)
			}
			og := rep.OrderingGames
			if og == nil {
				t.Fatalf("%s fee-market sweep has no ordering-games block", mode.name)
			}
			if og.BaseFee != 100 || og.TipBudget != 400 {
				t.Fatalf("config echo wrong: %+v", og)
			}
			if og.FeesBurned == 0 || og.FeesTipped == 0 {
				t.Fatalf("fee ledger dead: %+v", og)
			}
			if og.CommittedDeals == 0 || og.FeePerCommit <= 0 {
				t.Fatalf("no fee-per-commit accounting: %+v", og)
			}
			if len(og.InclusionDelay) == 0 {
				t.Fatal("no tip-decile inclusion delays")
			}
			total := 0
			for i, td := range og.InclusionDelay {
				total += td.Count
				if td.Count <= 0 || td.MeanDelay < 0 {
					t.Fatalf("degenerate decile %+v", td)
				}
				if i > 0 && td.MaxTip <= og.InclusionDelay[i-1].MaxTip {
					t.Fatalf("deciles not ascending by tip: %+v", og.InclusionDelay)
				}
			}
			if total == 0 {
				t.Fatal("tip deciles cover no transactions")
			}
			if og.FeeBidAttempts == 0 {
				t.Fatal("no fee-bid races at 35% adversary rate")
			}
			if !rep.Clean() {
				var buf bytes.Buffer
				rep.Fprint(&buf)
				t.Fatalf("fee-market population not clean:\n%s", buf.String())
			}
		})
	}
	// No fee options: no ordering-games block.
	plain, err := Sweep(Options{Deals: 10, Workers: 2, Gen: GenOptions{Seed: 7, AdversaryRate: 0.35}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.OrderingGames != nil {
		t.Fatal("FIFO sweep grew an ordering-games block")
	}
}

// TestFleetFeeMarketArenaReplayDeterministic: arena replays stay
// byte-identical with the fee market enabled — the flagged deal
// regenerates inside the identical fee environment, down to its fee
// attribution.
func TestFleetFeeMarketArenaReplayDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("replay indices are baked for the full 60-deal population")
	}
	opts := feeSweepOpts(60, 4, true)
	for _, idx := range []int{0, 19, 20, 42, 59} {
		a, err := ReplayArenaDeal(opts, idx)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ReplayArenaDeal(opts, idx)
		if err != nil {
			t.Fatal(err)
		}
		fa := fmt.Sprintf("%d %d %s %v fees=%d races=%d %s",
			a.Seed, a.Adversaries, a.Spec.ID, a.ArenaDelta, a.Fees, a.FrontRuns, a.Result.Summary())
		fb := fmt.Sprintf("%d %d %s %v fees=%d races=%d %s",
			b.Seed, b.Adversaries, b.Spec.ID, b.ArenaDelta, b.Fees, b.FrontRuns, b.Result.Summary())
		if fa != fb {
			t.Fatalf("fee-market replay of arena deal %d not deterministic:\n%s\n---\n%s", idx, fa, fb)
		}
	}
}

// TestFleetFeeBidWinRateExceedsPlainRacer lifts the arena-level
// acceptance claim to the sweep surface users actually run: on the same
// seeds, enabling -feemarket turns the front-runner population into fee
// bidders whose aggregate win rate strictly exceeds the plain gossip
// racers' under FIFO.
func TestFleetFeeBidWinRateExceedsPlainRacer(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical win-rate comparison needs the full population")
	}
	fifo := feeSweepOpts(100, 4, true)
	fifo.Gen.Fees = nil
	plainRep, err := Sweep(fifo)
	if err != nil {
		t.Fatal(err)
	}
	feeRep, err := Sweep(feeSweepOpts(100, 4, true))
	if err != nil {
		t.Fatal(err)
	}
	inf := plainRep.Interference
	og := feeRep.OrderingGames
	if inf == nil || og == nil {
		t.Fatal("missing report blocks")
	}
	if inf.FrontRunAttempts == 0 || og.FeeBidAttempts == 0 {
		t.Fatalf("degenerate race counts: plain %d, bids %d", inf.FrontRunAttempts, og.FeeBidAttempts)
	}
	plainRate := float64(inf.FrontRunWins) / float64(inf.FrontRunAttempts)
	bidRate := og.FeeBidWinRate()
	if bidRate <= plainRate {
		t.Fatalf("fee-bid win rate %.3f (%d/%d) does not exceed plain %.3f (%d/%d)",
			bidRate, og.FeeBidWins, og.FeeBidAttempts,
			plainRate, inf.FrontRunWins, inf.FrontRunAttempts)
	}
}
