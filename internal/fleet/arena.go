package fleet

import (
	"fmt"

	"xdeal/internal/arena"
	"xdeal/internal/obs"
	"xdeal/internal/sim"
)

// ArenaOptions configures arena-mode sweeps: the population is split
// into shared worlds of DealsPerArena deals each, every arena runs as
// one single-threaded simulation, and arenas parallelize across the
// worker pool. The aggregate report gains Interference metrics.
type ArenaOptions struct {
	// DealsPerArena is the number of deals sharing one world; defaults
	// to 25. Bigger arenas mean more contention per chain.
	DealsPerArena int
	// Chains is the number of shared chains per arena; defaults to 4.
	Chains int
	// Volatility is the market's per-tick fractional price move
	// (default 0.02); it arms the sore-loser adversaries.
	Volatility float64
	// MaxBlockTxs caps per-block capacity on the shared chains
	// (default 8) — the contention mechanism.
	MaxBlockTxs int
	// Baselines re-runs each deal alone to measure contention-induced
	// decision-latency inflation (one extra isolated run per deal).
	Baselines bool
	// Bundles turns every arena's ordering game deal-granular: the
	// shared chains run per-block combinatorial auctions over
	// all-or-nothing deal bundles (see internal/bundle), the
	// front-runner slot of the adversary mix griefs whole bundles
	// instead of fee-bidding single transactions, and the report gains
	// a BundleAuctions block (win/defer rates, exclusion attempts and
	// successes, deadline slack by bid decile). Requires the sweep's
	// fee market (GenOptions.Fees).
	Bundles bool
	// BundleBudget caps each bundle griefer's total per-slot bid
	// increments (default 400).
	BundleBudget uint64
	// Hedge arms the sore-loser defense across the sweep: compliant
	// mix slots insure their deposits at premium-priced hedging
	// contracts (see internal/hedge), and the report gains a Hedging
	// block (premiums, payouts, residual loss, premium by base-fee-
	// volatility decile).
	Hedge bool
	// HedgeCollateral is the bond size as a multiple of the insured
	// deposit (default 1.0).
	HedgeCollateral float64
	// PremiumVolWindow is the realized base-fee volatility window (in
	// sealed blocks) premiums are priced over (default 32).
	PremiumVolWindow int
	// Shards > 1 executes each sealed block's transactions in parallel
	// across that many goroutines per shared chain (see
	// chain.Config.Shards). Reports stay byte-identical to the serial
	// default — the knob trades cores for wall-clock only.
	Shards int
}

func (o *ArenaOptions) defaults() error {
	if o.DealsPerArena < 0 {
		return fmt.Errorf("fleet: negative deals-per-arena %d", o.DealsPerArena)
	}
	if o.Chains < 0 {
		return fmt.Errorf("fleet: negative chain count %d", o.Chains)
	}
	if o.Volatility < 0 {
		return fmt.Errorf("fleet: negative volatility %v", o.Volatility)
	}
	if o.MaxBlockTxs < 0 {
		return fmt.Errorf("fleet: negative block capacity %d", o.MaxBlockTxs)
	}
	if o.Shards < 0 {
		return fmt.Errorf("fleet: negative shard count %d", o.Shards)
	}
	if o.HedgeCollateral < 0 {
		return fmt.Errorf("fleet: negative hedge collateral %v", o.HedgeCollateral)
	}
	if o.PremiumVolWindow < 0 {
		return fmt.Errorf("fleet: negative premium volatility window %d", o.PremiumVolWindow)
	}
	if o.DealsPerArena == 0 {
		o.DealsPerArena = 25
	}
	if o.Chains == 0 {
		o.Chains = 4
	}
	if o.BundleBudget == 0 {
		o.BundleBudget = 400
	}
	if o.HedgeCollateral == 0 {
		o.HedgeCollateral = 1.0
	}
	if o.PremiumVolWindow == 0 {
		o.PremiumVolWindow = 32
	}
	return nil
}

// arenaProtocol maps the generator's protocol mix onto the arena's
// single-protocol worlds: all deals at one escrow contract must share
// commit machinery, so "mixed" alternates whole arenas between the two
// protocols instead of mixing within one.
func arenaProtocol(mix string, arenaIdx int) (string, error) {
	switch mix {
	case "timelock", "cbc":
		return mix, nil
	case "", "mixed":
		if arenaIdx%2 == 1 {
			return "cbc", nil
		}
		return "timelock", nil
	default:
		return "", fmt.Errorf("fleet: unknown protocol %q (want timelock, cbc, or mixed)", mix)
	}
}

// ArenaPopulation synthesizes the population of arena a: count deals
// sharing ao.Chains chains, with this generator's adversary rate and
// size cap. Pure in (generator options, a), so any flagged deal can be
// regenerated for replay from its printed index alone.
func (g *Generator) ArenaPopulation(a, count int, ao ArenaOptions) ([]arena.DealSetup, error) {
	if err := ao.defaults(); err != nil {
		return nil, err
	}
	return arena.NewPopulation(g.arenaPopOptions(a, count, ao))
}

func (g *Generator) arenaPopOptions(a, count int, ao ArenaOptions) arena.PopOptions {
	po := arena.PopOptions{
		Seed:          sim.Mix64(g.opts.Seed ^ sim.Mix64(uint64(a)+0x51ed270b941a9e37)),
		Deals:         count,
		Chains:        ao.Chains,
		MaxParties:    g.opts.MaxParties,
		AdversaryRate: g.opts.AdversaryRate,
	}
	if f := g.opts.Fees; f != nil {
		po.FeeMarket = true
		po.TipBudget = f.TipBudget
	}
	po.Bundles = ao.Bundles
	po.BundleBudget = ao.BundleBudget
	po.Hedged = ao.Hedge
	return po
}

// arenaRunOptions assembles one arena's world options.
func arenaRunOptions(gen GenOptions, ao ArenaOptions, arenaIdx int) (arena.Options, error) {
	proto, err := arenaProtocol(gen.Protocol, arenaIdx)
	if err != nil {
		return arena.Options{}, err
	}
	o := arena.Options{
		Seed:             sim.Mix64(gen.Seed ^ sim.Mix64(uint64(arenaIdx)+0x7fb5d329728ea185)),
		Protocol:         proto,
		Volatility:       ao.Volatility,
		MaxBlockTxs:      ao.MaxBlockTxs,
		Baselines:        ao.Baselines,
		Bundles:          ao.Bundles,
		BundleBudget:     ao.BundleBudget,
		Hedge:            ao.Hedge,
		HedgeCollateral:  ao.HedgeCollateral,
		PremiumVolWindow: ao.PremiumVolWindow,
		Shards:           ao.Shards,
	}
	if f := gen.Fees; f != nil {
		o.FeeMarket = true
		o.BaseFee = f.BaseFee
		o.TipBudget = f.TipBudget
	}
	return o, nil
}

// runArena synthesizes and executes arena a of a totalDeals population.
// Both the sweep and the replay path go through here, so a flagged deal
// is guaranteed to replay inside the identical world. A non-nil metrics
// registry receives the arena's substrate and interference counters.
func runArena(gen *Generator, genOpts GenOptions, ao ArenaOptions, a, totalDeals int, metrics *obs.Registry) (*arena.Result, error) {
	count := ao.DealsPerArena
	if rest := totalDeals - a*ao.DealsPerArena; rest < count {
		count = rest
	}
	pop, err := gen.ArenaPopulation(a, count, ao)
	if err != nil {
		return nil, err
	}
	ropts, err := arenaRunOptions(genOpts, ao, a)
	if err != nil {
		return nil, err
	}
	ropts.Metrics = metrics
	return arena.Run(ropts, pop)
}

// sweepArenas executes an arena-mode sweep: ceil(Deals/DealsPerArena)
// shared worlds across the worker pool, folded into one report in arena
// order. Each arena is a deterministic single-threaded simulation, so
// the report never depends on the worker count.
func sweepArenas(opts Options) (*Report, error) {
	ao := *opts.Arena
	if err := ao.defaults(); err != nil {
		return nil, err
	}
	gen, err := NewGenerator(opts.Gen)
	if err != nil {
		return nil, err
	}
	if _, err := arenaProtocol(opts.Gen.Protocol, 0); err != nil {
		return nil, err
	}
	nArenas := (opts.Deals + ao.DealsPerArena - 1) / ao.DealsPerArena
	stages := opts.Obs.stages()
	results := make([]*arena.Result, nArenas)
	var shards []*obs.Registry
	if opts.Obs.metrics() != nil {
		shards = make([]*obs.Registry, nArenas)
		for a := range shards {
			shards[a] = obs.NewRegistry()
		}
	}
	stopRun := stages.Start("run")
	runErr := Pool{Workers: opts.Workers}.Map(nArenas, func(a int) error {
		var reg *obs.Registry
		if shards != nil {
			reg = shards[a]
		}
		res, err := runArena(gen, opts.Gen, ao, a, opts.Deals, reg)
		if err != nil {
			return err
		}
		results[a] = res
		return nil
	})
	stopRun()
	if runErr != nil {
		return nil, runErr
	}
	for _, shard := range shards {
		opts.Obs.metrics().Merge(shard)
	}

	stopAgg := stages.Start("aggregate")
	defer stopAgg()
	agg := NewAggregator()
	feesOn := gen.opts.Fees != nil
	if f := gen.opts.Fees; f != nil {
		agg.EnableFees(f.BaseFee, f.TipBudget)
	}
	if ao.Hedge {
		agg.EnableHedging(ao.HedgeCollateral, ao.PremiumVolWindow)
	}
	if ao.Bundles {
		agg.EnableBundles(ao.BundleBudget)
	}
	agg.EnableObs(opts.Obs.metrics(), opts.Obs.flight())
	inter := &Interference{Arenas: nArenas, Chains: ao.Chains}
	var inflation Sketch
	for a, res := range results {
		proto, _ := arenaProtocol(opts.Gen.Protocol, a)
		for _, out := range res.Outcomes {
			agg.Add(arenaRecord(a*ao.DealsPerArena+out.Index, proto, out, feesOn))
		}
		inter.SoreLoserTriggers += res.Interference.SoreLoserTriggers
		inter.SoreLoserDeals += res.Interference.SoreLoserDeals
		inter.SoreLoserLoss += res.Interference.SoreLoserLoss
		inter.FrontRunAttempts += res.Interference.FrontRunAttempts
		inter.FrontRunWins += res.Interference.FrontRunWins
		inter.VictimExclusionBlocks += res.Interference.VictimExclusionBlocks
		agg.AddFeeWorld(res.Fees)
		agg.AddBundleArena(res.Interference)
		agg.AddFeeRaces(res.Interference.FrontRunAttempts, res.Interference.FrontRunWins,
			res.Interference.FeeBidAttempts, res.Interference.FeeBidWins)
		agg.AddHedgeArena(res.Interference)
		for _, x := range res.Interference.InflationSamples {
			inflation.Add(x)
		}
	}
	rep := agg.Report()
	inter.LatencyInflation = inflation.Dist()
	rep.Interference = inter
	return rep, nil
}

// ReplayArenaDeal re-runs the arena containing population index under
// the same options a sweep used and returns that deal's outcome. The
// arena is a pure function of (options, arena index), so the replay is
// bit-identical to the run that flagged the deal.
func ReplayArenaDeal(opts Options, index int) (*arena.DealOutcome, error) {
	if opts.Arena == nil {
		return nil, fmt.Errorf("fleet: ReplayArenaDeal without arena options")
	}
	ao := *opts.Arena
	if err := ao.defaults(); err != nil {
		return nil, err
	}
	if index < 0 || index >= opts.Deals {
		return nil, fmt.Errorf("fleet: deal index %d outside population [0, %d)", index, opts.Deals)
	}
	gen, err := NewGenerator(opts.Gen)
	if err != nil {
		return nil, err
	}
	a := index / ao.DealsPerArena
	res, err := runArena(gen, opts.Gen, ao, a, opts.Deals, nil)
	if err != nil {
		return nil, err
	}
	out := res.Outcomes[index-a*ao.DealsPerArena]
	return &out, nil
}

// arenaRecord converts one arena deal outcome into the fleet's
// aggregation currency. Index is population-global so a flagged deal
// maps straight back to (arena, deal) for replay; gas is the deal's
// label-attributed share of the shared chains.
func arenaRecord(globalIndex int, protocol string, out arena.DealOutcome, feesOn bool) Record {
	r := out.Result
	rec := Record{
		Index:        globalIndex,
		Seed:         out.Seed,
		SpecID:       out.Spec.ID,
		Shape:        out.Shape,
		Protocol:     protocol,
		Parties:      len(out.Spec.Parties),
		Escrows:      len(out.Spec.Escrows()),
		Transfers:    len(out.Spec.Transfers),
		Adversaries:  out.Adversaries,
		Sequenceable: out.Sequenceable,

		Committed: r.AllCommitted,
		Aborted:   r.AllAborted,
		Atomic:    r.Atomic(),

		SafetyViolations:   r.SafetyViolations,
		LivenessViolations: r.LivenessViolations,

		Gas:       r.DealGas,
		CBCGas:    r.CBCGas,
		DeltaTime: out.ArenaDelta,
		EndedAt:   int64(r.EndedAt),
		Spans:     newPhaseSpans(r.Phases, out.Spec.Delta),
		CritPath:  newCritPathRecord(r.Attribution),
	}
	if feesOn {
		// Per-deal fee attribution only; world totals, samples, and
		// race counters fold once per arena from the arena result.
		rec.Fee = &FeeRecord{DealFees: out.Fees}
	}
	return rec
}
