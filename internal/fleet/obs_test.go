package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"xdeal/internal/obs"
)

// obsArenaOpts is arenaOpts with the full feature stack armed (fee
// markets, hedging) so the merged registry spans chain, feemarket,
// hedge, and arena counters at once.
func obsArenaOpts(deals, workers int) Options {
	opts := arenaOpts(deals, workers)
	opts.Gen.Fees = &FeeOptions{}
	opts.Arena.Hedge = true
	return opts
}

// metricsSnapshotJSON sweeps with a registry attached and returns the
// snapshot's JSON bytes.
func metricsSnapshotJSON(t *testing.T, opts Options) string {
	t.Helper()
	reg := obs.NewRegistry()
	opts.Obs = &ObsOptions{Metrics: reg}
	if _, err := Sweep(opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestMetricsSnapshotDeterministicAcrossWorkerCounts: the merged
// registry is a pure function of the population, never the pool size —
// per-job shards merge commutatively and the snapshot is name-sorted.
// Run under -race this also exercises the shard fan-in for data races.
func TestMetricsSnapshotDeterministicAcrossWorkerCounts(t *testing.T) {
	want := metricsSnapshotJSON(t, sweepOpts(40, 1))
	if !strings.Contains(want, "chain.blocks_sealed") {
		t.Fatalf("isolated snapshot lacks chain counters:\n%s", want)
	}
	for _, workers := range []int{4, 16} {
		if got := metricsSnapshotJSON(t, sweepOpts(40, workers)); got != want {
			t.Fatalf("metrics snapshot at %d workers diverges from serial run:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestArenaMetricsSnapshotDeterministicAcrossWorkerCounts: same
// contract in arena mode with the full stack (fees + hedging), where
// shards are per-arena and the registry spans every subsystem.
func TestArenaMetricsSnapshotDeterministicAcrossWorkerCounts(t *testing.T) {
	deals := 60
	if testing.Short() {
		deals = 20
	}
	want := metricsSnapshotJSON(t, obsArenaOpts(deals, 1))
	for _, name := range []string{
		"chain.blocks_sealed", "chain.mempool_high", "chain.tx_queue_delay_ticks",
		"feemarket.burned", "hedge.binds", "arena.runs", "fleet.deals_run",
	} {
		if !strings.Contains(want, name) {
			t.Fatalf("arena snapshot lacks %s:\n%s", name, want)
		}
	}
	for _, workers := range []int{4, 16} {
		if got := metricsSnapshotJSON(t, obsArenaOpts(deals, workers)); got != want {
			t.Fatalf("arena metrics snapshot at %d workers diverges from serial run (workers=%d)", workers, workers)
		}
	}
}

// TestObsDoesNotChangeReport: a sweep with the whole observability
// layer attached renders byte-identical report output (tables and
// JSON) to the bare sweep — the instruments are passive by contract.
func TestObsDoesNotChangeReport(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts func() Options
	}{
		{"isolated", func() Options { return sweepOpts(40, 4) }},
		{"arena", func() Options { return obsArenaOpts(40, 4) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bare := renderedReport(t, tc.opts())
			instrumented := tc.opts()
			instrumented.Obs = &ObsOptions{
				Metrics: obs.NewRegistry(),
				Flight:  obs.NewRecorder(0),
				Stages:  obs.NewStageTimer(),
			}
			if got := renderedReport(t, instrumented); got != bare {
				t.Fatalf("observability changed the report:\n--- bare ---\n%s\n--- instrumented ---\n%s", bare, got)
			}
		})
	}
}

// TestPhasesBlockLocalizesLifecycle: the Phases block carries, per
// protocol, distributions for at least four lifecycle phases, each
// with positive counts and a total no smaller than its parts'
// medians — and the block is identical at any worker count (it rides
// the same index-order fold as every other aggregate).
func TestPhasesBlockLocalizesLifecycle(t *testing.T) {
	rep, err := Sweep(sweepOpts(60, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phases == nil || len(rep.Phases.Protocols) == 0 {
		t.Fatal("report has no Phases block")
	}
	for _, pp := range rep.Phases.Protocols {
		if len(pp.Phases) < 4 {
			t.Fatalf("protocol %s localizes only %d phases, want >= 4: %+v",
				pp.Protocol, len(pp.Phases), pp.Phases)
		}
		byName := make(map[string]PhaseDist)
		for _, ph := range pp.Phases {
			if ph.Count <= 0 {
				t.Fatalf("protocol %s phase %s has count %d", pp.Protocol, ph.Phase, ph.Count)
			}
			byName[ph.Phase] = ph
		}
		total, ok := byName["total"]
		if !ok {
			t.Fatalf("protocol %s has no total phase: %+v", pp.Protocol, pp.Phases)
		}
		if total.P50 <= 0 {
			t.Fatalf("protocol %s total p50 = %v, want positive", pp.Protocol, total.P50)
		}
	}

	// Worker-count invariance of the block alone.
	blockJSON := func(workers int) string {
		rep, err := Sweep(sweepOpts(60, workers))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rep.Phases)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	want := blockJSON(1)
	for _, workers := range []int{4, 16} {
		if got := blockJSON(workers); got != want {
			t.Fatalf("Phases block at %d workers diverges:\n%s\nvs\n%s", workers, want, got)
		}
	}
}

// TestFlightRecorderCapturesViolations: a hand-built violating record
// folded through the aggregator produces the full evidence trail —
// the deal identity event plus one event per property violation and
// the run error — while a clean record stays silent.
func TestFlightRecorderCapturesViolations(t *testing.T) {
	rec := obs.NewRecorder(0)
	agg := NewAggregator()
	agg.EnableObs(nil, rec)

	agg.Add(Record{Index: 0, Seed: 11, SpecID: "clean", Protocol: "timelock",
		Sequenceable: true, Committed: true, EndedAt: 100})
	if rec.Len() != 0 {
		t.Fatalf("clean record produced %d flight events", rec.Len())
	}

	agg.Add(Record{
		Index: 3, Seed: 99, SpecID: "bad-deal", Shape: "cycle", Protocol: "cbc",
		Adversaries:        1,
		SafetyViolations:   []string{"party A lost escrow e1"},
		LivenessViolations: []string{"party B deposit stranded past timeout"},
		Err:                "run: chain stalled",
		EndedAt:            480,
	})
	// P3: fully compliant, sequenceable, outage-free, yet uncommitted.
	agg.Add(Record{Index: 4, Seed: 101, SpecID: "stuck", Protocol: "timelock",
		Sequenceable: true, Committed: false, EndedAt: 512})

	events := rec.Events()
	kinds := make(map[string]int)
	var details strings.Builder
	for _, ev := range events {
		if ev.Source != "fleet" {
			t.Fatalf("unexpected source %q: %+v", ev.Source, ev)
		}
		kinds[ev.Kind]++
		details.WriteString(ev.Detail + "\n")
	}
	if kinds["deal"] != 2 {
		t.Fatalf("want 2 deal events (one per flagged deal), got %d: %v", kinds["deal"], kinds)
	}
	if kinds["violation"] != 3 {
		t.Fatalf("want 3 violation events (P1+P2+P3), got %d: %v", kinds["violation"], kinds)
	}
	if kinds["error"] != 1 {
		t.Fatalf("want 1 error event, got %d: %v", kinds["error"], kinds)
	}
	for _, want := range []string{
		"property=safety(P1)", "property=liveness(P2)", "property=strong-liveness(P3)",
		"index=3 seed=99", "index=4 seed=101", "chain stalled",
	} {
		if !strings.Contains(details.String(), want) {
			t.Fatalf("flight details lack %q:\n%s", want, details.String())
		}
	}

	// The JSONL export round-trips and keeps seq order.
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != rec.Len() {
		t.Fatalf("JSONL has %d lines, recorder holds %d events", len(lines), rec.Len())
	}
	for i, line := range lines {
		var ev obs.FlightEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d invalid: %v\n%s", i, err, line)
		}
		if int(ev.Seq) != i {
			t.Fatalf("line %d has seq %d", i, ev.Seq)
		}
	}
}

// TestStageTimingCoversSweep: a swept StageTimer reports the three
// pipeline stages with non-negative wall time (wall-clock readings
// stay inside obs and never reach the report).
func TestStageTimingCoversSweep(t *testing.T) {
	opts := sweepOpts(40, 4)
	stages := obs.NewStageTimer()
	opts.Obs = &ObsOptions{Stages: stages}
	if _, err := Sweep(opts); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, s := range stages.Stages() {
		if s.Seconds < 0 {
			t.Fatalf("negative stage time: %+v", s)
		}
		got[s.Stage] = true
	}
	for _, want := range []string{"generate", "run", "aggregate"} {
		if !got[want] {
			t.Fatalf("stage breakdown is missing %q: %+v", want, stages.Stages())
		}
	}
}
