// Package fleet executes populations of independent deal worlds
// concurrently and aggregates their outcomes into population statistics.
//
// Each engine world is a single-threaded deterministic simulation, so a
// fleet of worlds parallelizes trivially across a bounded worker pool:
// no locks are shared between runs, and results are collected by index
// so every aggregate is identical regardless of worker count. The
// package provides three layers:
//
//   - Pool: a bounded index-space worker pool (Map), also used by the
//     experiment harness to parallelize its sweeps;
//   - Generator: a seeded synthesizer of randomized deal scenarios —
//     spec shapes (rings, broker chains, auctions, dense matrices,
//     random digraphs) crossed with adversary mixes, protocols, delay
//     policies, and DoS outage windows;
//   - Sweep/Aggregate: fleet execution and population statistics
//     (commit/abort rates, gas and Δ-time percentiles, and Property 1–3
//     violations flagged with the seed that reproduces them).
package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool over an index space. The zero value
// uses one worker per available CPU.
type Pool struct {
	// Workers is the concurrency bound; <= 0 means GOMAXPROCS.
	Workers int
}

// Size returns the effective worker count for n tasks.
func (p Pool) Size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map invokes fn(0..n-1) across the pool's workers and blocks until all
// calls return. Indices are handed out dynamically (work stealing), so
// uneven task costs balance across workers. If any calls fail, the
// error at the lowest index is returned — deterministically, regardless
// of scheduling.
func (p Pool) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.Size(n)
	errs := make([]error, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
