package fleet

import (
	"fmt"

	"xdeal/internal/engine"
	"xdeal/internal/obs"
)

// FeeOptions enables fee markets across a sweep: every generated world
// gets EIP-1559-style chains (tip-ordered blocks, base fee tracking
// block fullness), compliant parties escalate tips toward their
// timelock deadlines, and the front-runner slot of the adversary mix
// upgrades to a fee bidder that outbids its victims from TipBudget.
// The report gains an ordering-games block.
type FeeOptions struct {
	// BaseFee is each chain's initial base fee (default 100).
	BaseFee uint64
	// TipBudget caps each fee bidder's total tip spend (default 400).
	TipBudget uint64
}

func (f *FeeOptions) defaults() {
	if f.BaseFee == 0 {
		f.BaseFee = 100
	}
	if f.TipBudget == 0 {
		f.TipBudget = 400
	}
}

// FeeRecord is the fee-market slice of one deal run's outcome.
type FeeRecord struct {
	// DealFees is the spend attributable to this deal (burn + tips).
	DealFees uint64 `json:"deal_fees"`
	// Burned/Tipped total the run's world-wide fee flows; only filled
	// for isolated worlds (arena sweeps fold their shared worlds'
	// totals once per arena instead).
	Burned uint64 `json:"burned,omitempty"`
	Tipped uint64 `json:"tipped,omitempty"`
	// Plain front-run races and fee-bid races run and won by this
	// run's parties (isolated mode; arenas meter through Interference).
	Races    int `json:"races,omitempty"`
	RaceWins int `json:"race_wins,omitempty"`
	Bids     int `json:"bids,omitempty"`
	BidWins  int `json:"bid_wins,omitempty"`
	// Samples holds (tip, queuing delay) per included transaction.
	Samples []engine.FeeSample `json:"-"`
}

// Options configures a randomized fleet sweep (cmd/dealsweep mirrors
// these as flags).
type Options struct {
	// Deals is the population size.
	Deals int
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Gen configures scenario synthesis.
	Gen GenOptions
	// Arena, when non-nil, switches the sweep to arena mode: instead of
	// isolated per-deal worlds, deals run in shared worlds of
	// Arena.DealsPerArena deals each, contending for the same chains
	// against adaptive adversaries (see internal/arena).
	Arena *ArenaOptions
	// Obs, when non-nil, attaches the observability layer (metrics
	// registry, flight recorder, stage timer). Strictly passive: the
	// Report is byte-identical with Obs set or nil.
	Obs *ObsOptions
}

// Record is the trimmed, aggregation-ready outcome of one deal run.
// Seed is the job seed: rebuilding the job from (master seed, Index)
// or replaying with this record's engine options reproduces the run
// bit-for-bit.
type Record struct {
	Index       int    `json:"index"`
	Seed        uint64 `json:"seed"`
	SpecID      string `json:"spec"`
	Shape       string `json:"shape"`
	Protocol    string `json:"protocol"`
	Parties     int    `json:"parties"`
	Escrows     int    `json:"escrows"`
	Transfers   int    `json:"transfers"`
	Adversaries int    `json:"adversaries"`
	Outage      bool   `json:"outage,omitempty"`
	// Sequenceable mirrors Job.Sequenceable: Property 3 is only
	// asserted over sequenceable, fully compliant, outage-free runs.
	Sequenceable bool `json:"sequenceable"`

	Committed bool `json:"committed"`
	Aborted   bool `json:"aborted"`
	Atomic    bool `json:"atomic"`

	SafetyViolations   []string `json:"safety_violations,omitempty"`
	LivenessViolations []string `json:"liveness_violations,omitempty"`

	Gas       uint64  `json:"gas"`
	CBCGas    uint64  `json:"cbc_gas,omitempty"`
	DeltaTime float64 `json:"delta_time"` // decision completion in Δ units
	EndedAt   int64   `json:"ended_at"`

	// Spans is the deal's per-phase lifecycle timing in Δ units; nil
	// when no phase completed (e.g. an errored build).
	Spans *PhaseSpans `json:"spans,omitempty"`

	// CritPath is the deal's decision-latency attribution (sim ticks,
	// buckets summing exactly to total); nil when the deal never
	// reached a decision.
	CritPath *CritPathRecord `json:"crit_path,omitempty"`

	// Fee carries the run's fee-market outcome; nil without a fee
	// market.
	Fee *FeeRecord `json:"fee,omitempty"`

	Err string `json:"error,omitempty"`
}

// record evaluates one engine result into a Record.
func record(job Job, r *engine.Result) Record {
	rec := Record{
		Index:        job.Index,
		Seed:         job.Seed,
		SpecID:       job.Spec.ID,
		Shape:        job.Shape,
		Protocol:     job.Opts.Protocol.String(),
		Parties:      len(job.Spec.Parties),
		Escrows:      len(job.Spec.Escrows()),
		Transfers:    len(job.Spec.Transfers),
		Adversaries:  job.Adversaries,
		Outage:       job.Outage,
		Sequenceable: job.Sequenceable,

		Committed: r.AllCommitted,
		Aborted:   r.AllAborted,
		Atomic:    r.Atomic(),

		SafetyViolations:   r.SafetyViolations,
		LivenessViolations: r.LivenessViolations,

		Gas:       r.Gas.Used(),
		CBCGas:    r.CBCGas,
		DeltaTime: r.Phases.InDelta(r.Phases.DecisionEnd, job.Spec.Delta),
		EndedAt:   int64(r.EndedAt),
		Spans:     newPhaseSpans(r.Phases, job.Spec.Delta),
		CritPath:  newCritPathRecord(r.Attribution),
	}
	if r.Fees != nil {
		fee := &FeeRecord{
			DealFees: r.DealFees,
			Burned:   r.Fees.Burned,
			Tipped:   r.Fees.Tipped,
			Samples:  r.Fees.Samples,
		}
		if t := job.races; t != nil {
			fee.Races, fee.RaceWins = t.races, t.raceWins
			fee.Bids, fee.BidWins = t.bids, t.bidWins
		}
		rec.Fee = fee
	}
	return rec
}

// RunJobs executes the jobs across the worker pool and returns one
// record per job, in job order. Each job's world is an isolated
// single-threaded simulation, so runs share nothing; the output is
// identical for any worker count.
func RunJobs(jobs []Job, workers int) []Record {
	return runJobs(jobs, workers, nil)
}

// runJobs is RunJobs with an optional metrics registry: each job's
// world registers into a private per-job registry, and the shards merge
// into reg in job order once the pool drains. Shard merges are
// commutative, so the merged registry is identical at any worker count.
func runJobs(jobs []Job, workers int, reg *obs.Registry) []Record {
	records := make([]Record, len(jobs))
	var shards []*obs.Registry
	if reg != nil {
		shards = make([]*obs.Registry, len(jobs))
	}
	// Map's per-index error slot is unused: a failed build is itself a
	// population observation, recorded rather than aborting the sweep.
	_ = Pool{Workers: workers}.Map(len(jobs), func(i int) error {
		job := jobs[i]
		w, err := engine.Build(job.Spec, job.Opts)
		if err != nil {
			records[i] = Record{
				Index: job.Index, Seed: job.Seed, SpecID: job.Spec.ID,
				Shape: job.Shape, Protocol: job.Opts.Protocol.String(),
				Adversaries: job.Adversaries,
				Err:         fmt.Sprintf("build: %v", err),
			}
			return nil
		}
		records[i] = record(job, w.Run())
		if shards != nil {
			shards[i] = obs.NewRegistry()
			w.RegisterMetrics(shards[i])
		}
		return nil
	})
	for _, shard := range shards {
		reg.Merge(shard)
	}
	return records
}

// Sweep synthesizes opts.Deals scenarios from the master seed, executes
// them across the worker pool, and aggregates population statistics.
// The report depends only on (Gen, Deals, Arena) — never on Workers.
//
// Execution streams: jobs run in bounded chunks and each record folds
// into the aggregate the moment its chunk completes, so memory is
// constant in the population size (a chunk of records, not all of
// them). Records fold in index order, which is why the streamed report
// is byte-identical to Aggregate over RunJobs at any worker count.
func Sweep(opts Options) (*Report, error) {
	if opts.Deals < 0 {
		return nil, fmt.Errorf("fleet: negative deal count %d", opts.Deals)
	}
	if opts.Arena != nil {
		return sweepArenas(opts)
	}
	gen, err := NewGenerator(opts.Gen)
	if err != nil {
		return nil, err
	}
	agg := NewAggregator()
	if f := gen.opts.Fees; f != nil {
		agg.EnableFees(f.BaseFee, f.TipBudget)
	}
	agg.EnableObs(opts.Obs.metrics(), opts.Obs.flight())
	stream(gen, opts.Deals, opts.Workers, agg, opts.Obs)
	return agg.Report(), nil
}

// Stream synthesizes and executes jobs 0..n-1 from the generator in
// bounded chunks across the worker pool, folding each record into agg
// in index order — the streaming sibling of Jobs+RunJobs for callers
// that never need the record slice. Memory is constant in n (one chunk
// of jobs and records at a time); the fold is identical to
// Aggregate(RunJobs(gen.Jobs(n), workers)) at any worker count.
func Stream(gen *Generator, n, workers int, agg *Aggregator) {
	stream(gen, n, workers, agg, nil)
}

// stream is Stream with the observability layer attached: per-chunk
// wall time is split into generate / run / aggregate stages, and each
// world's metrics merge into the registry in index order.
func stream(gen *Generator, n, workers int, agg *Aggregator, ob *ObsOptions) {
	stages := ob.stages()
	chunk := Pool{Workers: workers}.Size(n) * 8
	if chunk < 64 {
		chunk = 64
	}
	jobs := make([]Job, 0, chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		jobs = jobs[:0]
		stopGen := stages.Start("generate")
		for i := lo; i < hi; i++ {
			jobs = append(jobs, gen.Job(i))
		}
		stopGen()
		stopRun := stages.Start("run")
		recs := runJobs(jobs, workers, ob.metrics())
		stopRun()
		stopAgg := stages.Start("aggregate")
		for _, rec := range recs {
			agg.Add(rec)
		}
		stopAgg()
	}
}
