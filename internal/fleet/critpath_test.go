package fleet

import (
	"bytes"
	"strings"
	"testing"

	"xdeal/internal/trace"
)

// critPathBlock renders just the critical-path section of a sweep's
// report at the given worker count.
func critPathBlock(t *testing.T, workers int) string {
	t.Helper()
	opts := sweepOpts(60, workers)
	rep, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalPath == nil || len(rep.CriticalPath.Slices) == 0 {
		t.Fatal("sweep produced no critical-path block")
	}
	var buf bytes.Buffer
	fprintCriticalPath(&buf, rep.CriticalPath)
	return buf.String()
}

// TestCriticalPathBlockIndependentOfWorkerCount: the attribution
// aggregation folds in deal-index order regardless of which worker ran
// which deal, so the rendered block is byte-identical at any pool
// size. Under -race this also exercises the post-hoc span derivation
// for data races.
func TestCriticalPathBlockIndependentOfWorkerCount(t *testing.T) {
	want := critPathBlock(t, 1)
	for _, workers := range []int{4, 16} {
		if got := critPathBlock(t, workers); got != want {
			t.Fatalf("critical-path block at %d workers diverges from serial run:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
	for _, bucket := range critBucketNames {
		if !strings.Contains(want, bucket) {
			t.Fatalf("rendered block lacks bucket %q:\n%s", bucket, want)
		}
	}
}

// TestCritPathRecordConservation: every decided deal's record conserves
// its total exactly — the fleet-side restatement of the engine
// invariant, checked across a mixed adversarial population.
func TestCritPathRecordConservation(t *testing.T) {
	opts := sweepOpts(60, 4)
	g, err := NewGenerator(opts.Gen)
	if err != nil {
		t.Fatal(err)
	}
	records := RunJobs(g.Jobs(opts.Deals), 4)
	decided := 0
	for _, rec := range records {
		if rec.CritPath == nil {
			continue
		}
		decided++
		cp := rec.CritPath
		sum := cp.ProtocolWait + cp.BlockQueueing + cp.PricedOut + cp.Adversary + cp.Slack
		if sum != cp.Total {
			t.Fatalf("deal %d: buckets sum to %d, total %d: %+v", rec.Index, sum, cp.Total, cp)
		}
		if cp.Total <= 0 {
			t.Fatalf("deal %d: non-positive total: %+v", rec.Index, cp)
		}
	}
	if decided == 0 {
		t.Fatal("no deal in the population carried an attribution")
	}
}

// TestNewCritPathRecordNilSafe: undecided deals attribute nothing.
func TestNewCritPathRecordNilSafe(t *testing.T) {
	if rec := newCritPathRecord(nil); rec != nil {
		t.Fatalf("nil attribution produced a record: %+v", rec)
	}
	if rec := newCritPathRecord(&trace.Attribution{}); rec != nil {
		t.Fatalf("zero-total attribution produced a record: %+v", rec)
	}
	a := &trace.Attribution{ProtocolWait: 30, Adversary: 70, Total: 100}
	rec := newCritPathRecord(a)
	if rec == nil || rec.Total != 100 || rec.Adversary != 70 || rec.ProtocolWait != 30 {
		t.Fatalf("record does not mirror the attribution: %+v", rec)
	}
}
