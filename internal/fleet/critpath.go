package fleet

import (
	"fmt"
	"io"
	"sort"

	"xdeal/internal/obs"
	"xdeal/internal/trace"
)

// CritPathRecord is one deal's decision-latency attribution in sim
// ticks — the fleet currency of engine/trace causal analysis. Integer
// ticks keep the conservation invariant exact: the five buckets sum to
// Total with no rounding.
type CritPathRecord struct {
	ProtocolWait  int64 `json:"protocol_wait"`
	BlockQueueing int64 `json:"block_queueing"`
	PricedOut     int64 `json:"fee_priced_out"`
	Adversary     int64 `json:"adversary"`
	Slack         int64 `json:"scheduling_slack"`
	Total         int64 `json:"total"`
}

// newCritPathRecord converts the engine's attribution; nil in, nil out
// (a deal that never decided attributes nothing).
func newCritPathRecord(a *trace.Attribution) *CritPathRecord {
	if a == nil || a.Total <= 0 {
		return nil
	}
	return &CritPathRecord{
		ProtocolWait:  int64(a.ProtocolWait),
		BlockQueueing: int64(a.BlockQueueing),
		PricedOut:     int64(a.PricedOut),
		Adversary:     int64(a.Adversary),
		Slack:         int64(a.Slack),
		Total:         int64(a.Total),
	}
}

// critBucketNames is the fixed bucket order of the CriticalPath block.
var critBucketNames = []string{
	"protocol-wait", "block-queueing", "fee-priced-out", "adversary", "scheduling-slack",
}

// byName returns the named bucket's ticks.
func (c *CritPathRecord) byName(name string) int64 {
	switch name {
	case "protocol-wait":
		return c.ProtocolWait
	case "block-queueing":
		return c.BlockQueueing
	case "fee-priced-out":
		return c.PricedOut
	case "adversary":
		return c.Adversary
	case "scheduling-slack":
		return c.Slack
	}
	return 0
}

// BucketShare is one bucket's share-of-decision-latency distribution
// within a (protocol, mix) slice. Shares are per-deal fractions in
// [0, 1]; mean is exact, p50/p99 are sketch estimates.
type BucketShare struct {
	Bucket    string  `json:"bucket"`
	MeanShare float64 `json:"mean_share"`
	P50Share  float64 `json:"p50_share"`
	P99Share  float64 `json:"p99_share"`
}

// CritPathSlice is the attribution table for one protocol × adversary
// mix: where that population's decision latency actually went.
type CritPathSlice struct {
	Protocol string `json:"protocol"`
	// Mix is "compliant" (no deviating party in the deal) or
	// "adversarial" (at least one).
	Mix     string        `json:"mix"`
	Deals   int           `json:"deals"`
	Buckets []BucketShare `json:"buckets"`
}

// CriticalPathBlock is the always-on report block: per-bucket shares of
// decision latency, sliced by protocol and adversary mix. Like every
// block it is a pure fold of the records in index order, so it is
// byte-identical across worker counts and across replays.
type CriticalPathBlock struct {
	Slices []CritPathSlice `json:"slices"`
}

// critAgg folds one (protocol, mix) slice in constant memory: one
// share sketch per bucket plus exact mean accumulators.
type critAgg struct {
	deals    int
	sketches [5]Sketch
	sums     [5]float64
}

func (c *critAgg) add(r *CritPathRecord) {
	c.deals++
	for i, name := range critBucketNames {
		share := float64(r.byName(name)) / float64(r.Total)
		c.sums[i] += share
		if share > 0 {
			c.sketches[i].Add(share)
		}
	}
}

// slice finalizes the (protocol, mix) table. Every bucket appears, even
// all-zero ones — the schema is fixed so diffs across sweeps line up.
func (c *critAgg) slice(protocol, mix string) CritPathSlice {
	out := CritPathSlice{Protocol: protocol, Mix: mix, Deals: c.deals}
	for i, name := range critBucketNames {
		b := BucketShare{Bucket: name, MeanShare: c.sums[i] / float64(c.deals)}
		if c.sketches[i].count > 0 {
			d := c.sketches[i].Dist()
			b.P50Share, b.P99Share = d.P50, d.P99
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}

// critKey identifies a (protocol, mix) slice; the separator cannot
// occur in protocol names.
func critKey(protocol, mix string) string { return protocol + "|" + mix }

// addCrit folds one record's attribution into the aggregator.
func (a *Aggregator) addCrit(r Record) {
	if r.CritPath == nil || r.CritPath.Total <= 0 {
		return
	}
	mix := "compliant"
	if r.Adversaries > 0 {
		mix = "adversarial"
	}
	if a.crit == nil {
		a.crit = make(map[string]*critAgg)
	}
	key := critKey(r.Protocol, mix)
	c := a.crit[key]
	if c == nil {
		c = &critAgg{}
		a.crit[key] = c
	}
	c.add(r.CritPath)
}

// criticalPath finalizes the block; nil when no folded deal decided.
func (a *Aggregator) criticalPath() *CriticalPathBlock {
	if len(a.crit) == 0 {
		return nil
	}
	keys := make([]string, 0, len(a.crit))
	for k := range a.crit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cb := &CriticalPathBlock{}
	for _, k := range keys {
		sep := 0
		for i := range k {
			if k[i] == '|' {
				sep = i
				break
			}
		}
		cb.Slices = append(cb.Slices, a.crit[k].slice(k[:sep], k[sep+1:]))
	}
	return cb
}

// fprintCriticalPath renders the block as the report's attribution
// table: which cause bucket owns the population's decision latency.
func fprintCriticalPath(w io.Writer, cb *CriticalPathBlock) {
	fmt.Fprintf(w, "\ncritical path (share of decision latency, by protocol and adversary mix):\n")
	fmt.Fprintf(w, "  %-10s %-12s %6s  %-16s %7s %7s %7s\n",
		"protocol", "mix", "deals", "bucket", "mean", "p50", "p99")
	for _, s := range cb.Slices {
		for i, b := range s.Buckets {
			proto, mix, deals := "", "", ""
			if i == 0 {
				proto, mix, deals = s.Protocol, s.Mix, fmt.Sprintf("%d", s.Deals)
			}
			fmt.Fprintf(w, "  %-10s %-12s %6s  %-16s %6.1f%% %6.1f%% %6.1f%%\n",
				proto, mix, deals, b.Bucket, 100*b.MeanShare, 100*b.P50Share, 100*b.P99Share)
		}
	}
}

// recordFlightCrit appends the flagged deal's latency attribution to
// its flight-recorder evidence — the causal summary riding alongside
// the violation events, so a dumped JSONL already says where the dying
// deal's time went before anyone replays it.
func recordFlightCrit(rec *obs.Recorder, r Record) {
	if rec == nil || r.CritPath == nil {
		return
	}
	cp := r.CritPath
	rec.Record(r.EndedAt, "fleet", "critical-path",
		fmt.Sprintf("index=%d seed=%d protocol_wait=%d block_queueing=%d fee_priced_out=%d adversary=%d scheduling_slack=%d total=%d",
			r.Index, r.Seed, cp.ProtocolWait, cp.BlockQueueing, cp.PricedOut, cp.Adversary, cp.Slack, cp.Total))
}
