package fleet

import (
	"bytes"
	"testing"
)

// hedgedOpts is the canonical hedged fee-market arena sweep: hedging
// needs the fee market's base-fee trajectory to price premiums, and the
// adversary mix supplies the sore losers the cover defends against.
func hedgedOpts(deals, workers int, hedged bool) Options {
	o := Options{
		Deals:   deals,
		Workers: workers,
		Gen: GenOptions{
			Seed:          7,
			Protocol:      "mixed",
			AdversaryRate: 0.35,
			Fees:          &FeeOptions{BaseFee: 100, TipBudget: 400},
		},
		Arena: &ArenaOptions{DealsPerArena: 20, Chains: 3, Volatility: 0.05},
	}
	o.Arena.Hedge = hedged
	return o
}

func renderedHedgedReport(t *testing.T, opts Options) string {
	t.Helper()
	rep, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestHedgedSweepDeterministicAcrossWorkerCounts: the hedged arena
// sweep keeps the fleet's reproducibility contract — byte-identical
// reports (tables and JSON, hedging block included) for any pool size.
// Run under -race this also exercises the hedged fan-out.
func TestHedgedSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	deals := 60
	if testing.Short() {
		deals = 20 // equality check only: scale the sweep, keep the pool racing
	}
	want := renderedHedgedReport(t, hedgedOpts(deals, 1, true))
	for _, workers := range []int{4, 16} {
		if got := renderedHedgedReport(t, hedgedOpts(deals, workers, true)); got != want {
			t.Fatalf("hedged report at %d workers diverges from serial run:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestHedgedSweepShrinksResidualLoss is the fleet-level acceptance
// assertion: on the same master seed, the hedged sweep's residual
// sore-loser loss is strictly below the unhedged twin's loss — the
// payouts in the Hedging block absorb the attack — while the unhedged
// twin carries no hedging block at all.
func TestHedgedSweepShrinksResidualLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical twin comparison needs the full population")
	}
	bare, err := Sweep(hedgedOpts(60, 4, false))
	if err != nil {
		t.Fatal(err)
	}
	covered, err := Sweep(hedgedOpts(60, 4, true))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Hedging != nil {
		t.Fatal("unhedged sweep grew a hedging block")
	}
	if bare.Interference == nil || bare.Interference.SoreLoserLoss == 0 {
		t.Fatal("unhedged twin stranded nothing on this seed; the comparison is vacuous")
	}
	h := covered.Hedging
	if h == nil {
		t.Fatal("hedged sweep carries no hedging block")
	}
	if h.Collateral != 1.0 || h.VolWindow != 32 {
		t.Fatalf("hedging config echo wrong: %+v", h)
	}
	if h.Binds == 0 || h.PremiumsPaid == 0 {
		t.Fatal("hedged sweep bound no cover")
	}
	if h.Settles > h.Binds {
		t.Fatalf("settled %d of %d positions", h.Settles, h.Binds)
	}
	if h.PayoutsClaimed == 0 {
		t.Fatal("no payouts claimed despite sore losers in the mix")
	}
	if h.GrossSoreLoserLoss != covered.Interference.SoreLoserLoss {
		t.Fatalf("hedging block gross %d disagrees with interference %d",
			h.GrossSoreLoserLoss, covered.Interference.SoreLoserLoss)
	}
	if h.ResidualSoreLoserLoss >= bare.Interference.SoreLoserLoss {
		t.Fatalf("hedged residual %d not strictly below the unhedged twin's loss %d",
			h.ResidualSoreLoserLoss, bare.Interference.SoreLoserLoss)
	}
	if h.ResidualSoreLoserLoss >= h.GrossSoreLoserLoss {
		t.Fatalf("payouts absorbed nothing: residual %d of gross %d",
			h.ResidualSoreLoserLoss, h.GrossSoreLoserLoss)
	}
	if a := h.Absorbed(); a <= 0 || a > 1 {
		t.Fatalf("absorbed fraction %v outside (0, 1]", a)
	}
	if !covered.Clean() {
		var buf bytes.Buffer
		covered.Fprint(&buf)
		t.Fatalf("hedged population not clean:\n%s", buf.String())
	}
}

// TestHedgedPremiumVolDeciles: the premium-by-volatility decile table
// is well-formed — deciles ascend, bind counts sum to the bind total,
// and premiums price as a sane fraction of the collateral they insure.
func TestHedgedPremiumVolDeciles(t *testing.T) {
	rep, err := Sweep(hedgedOpts(60, 4, true))
	if err != nil {
		t.Fatal(err)
	}
	h := rep.Hedging
	if h == nil || len(h.PremiumByVolDecile) == 0 {
		t.Fatal("no premium-by-volatility deciles")
	}
	binds, lastDecile, lastVol := 0, 0, -1
	for _, d := range h.PremiumByVolDecile {
		if d.Decile <= lastDecile {
			t.Fatalf("deciles not ascending: %+v", h.PremiumByVolDecile)
		}
		if d.MaxVolBps < lastVol {
			t.Fatalf("volatility bounds not ascending: %+v", h.PremiumByVolDecile)
		}
		if d.Binds == 0 {
			t.Fatalf("empty decile survived merging: %+v", d)
		}
		if d.MeanPremiumPct <= 0 || d.MeanPremiumPct > 100 {
			t.Fatalf("premium %% %v outside (0, 100]: %+v", d.MeanPremiumPct, d)
		}
		binds += d.Binds
		lastDecile, lastVol = d.Decile, d.MaxVolBps
	}
	if binds != h.Binds {
		t.Fatalf("decile binds sum to %d, hedging block counted %d", binds, h.Binds)
	}
}
