package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// Dist summarizes a sample distribution with percentiles.
type Dist struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// NewDist computes a Dist over the samples (order irrelevant).
func NewDist(samples []float64) Dist {
	d := Dist{Count: len(samples)}
	if d.Count == 0 {
		return d
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	d.Min, d.Max = s[0], s[len(s)-1]
	d.Mean = sum / float64(len(s))
	d.P50 = percentile(s, 0.50)
	d.P90 = percentile(s, 0.90)
	d.P99 = percentile(s, 0.99)
	return d
}

// percentile returns the nearest-rank percentile of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Violation flags one property violation with everything needed to
// replay the offending run.
type Violation struct {
	Index    int    `json:"index"`
	Seed     uint64 `json:"seed"`
	SpecID   string `json:"spec"`
	Protocol string `json:"protocol"`
	Property string `json:"property"` // "safety (P1)" | "liveness (P2)" | "strong liveness (P3)"
	Detail   string `json:"detail"`
}

// Counts tallies outcomes for one slice of the population.
type Counts struct {
	Runs      int `json:"runs"`
	Committed int `json:"committed"`
	Aborted   int `json:"aborted"`
	Mixed     int `json:"mixed"` // finalized inconsistently (non-atomic)
	// Unsettled runs ended atomically but with some escrow never
	// finalized — e.g. a deviator poisoned its escrow's Dinfo and kept
	// everyone else out (its own loss, not a violation).
	Unsettled int `json:"unsettled"`
	Errored   int `json:"errored"`
}

func (c *Counts) add(r Record) {
	c.Runs++
	switch {
	case r.Err != "":
		c.Errored++
	case r.Committed:
		c.Committed++
	case r.Aborted:
		c.Aborted++
	case !r.Atomic:
		c.Mixed++
	default:
		c.Unsettled++
	}
}

// CommitRate returns committed / runs (0 for an empty slice).
func (c Counts) CommitRate() float64 {
	if c.Runs == 0 {
		return 0
	}
	return float64(c.Committed) / float64(c.Runs)
}

// AbortRate returns aborted / runs (0 for an empty slice).
func (c Counts) AbortRate() float64 {
	if c.Runs == 0 {
		return 0
	}
	return float64(c.Aborted) / float64(c.Runs)
}

// Report aggregates a fleet sweep into population statistics. It is a
// pure function of the records, so it is identical for every worker
// count that produced them.
type Report struct {
	Total Counts `json:"total"`
	// FullyCompliant covers runs with no adversaries and no outages —
	// the slice Property 3 (strong liveness) promises will commit.
	FullyCompliant Counts `json:"fully_compliant"`
	// Adversarial covers runs with at least one deviating party.
	Adversarial Counts `json:"adversarial"`

	ByShape    map[string]*Counts `json:"by_shape"`
	ByProtocol map[string]*Counts `json:"by_protocol"`

	// Gas and DeltaTime summarize total gas and decision latency (in Δ
	// units) over finalized runs.
	Gas       Dist `json:"gas"`
	DeltaTime Dist `json:"delta_time"`

	// Violations flags every Property 1–3 violation with its seed.
	Violations []Violation `json:"violations,omitempty"`
}

// Aggregate folds records into a report.
func Aggregate(records []Record) *Report {
	rep := &Report{
		ByShape:    make(map[string]*Counts),
		ByProtocol: make(map[string]*Counts),
	}
	var gas, dtime []float64
	for _, r := range records {
		rep.Total.add(r)
		if r.Adversaries == 0 && !r.Outage {
			rep.FullyCompliant.add(r)
		}
		if r.Adversaries > 0 {
			rep.Adversarial.add(r)
		}
		bucket(rep.ByShape, r.Shape).add(r)
		bucket(rep.ByProtocol, r.Protocol).add(r)
		if r.Err == "" {
			gas = append(gas, float64(r.Gas))
			if r.DeltaTime > 0 {
				dtime = append(dtime, r.DeltaTime)
			}
		}
		for _, v := range r.SafetyViolations {
			rep.flag(r, "safety (P1)", v)
		}
		for _, v := range r.LivenessViolations {
			rep.flag(r, "liveness (P2)", v)
		}
		if r.Err == "" && r.Adversaries == 0 && !r.Outage && r.Sequenceable && !r.Committed {
			rep.flag(r, "strong liveness (P3)", "all parties compliant yet the deal did not commit")
		}
		if r.Err != "" {
			rep.flag(r, "error", r.Err)
		}
	}
	rep.Gas = NewDist(gas)
	rep.DeltaTime = NewDist(dtime)
	return rep
}

func bucket(m map[string]*Counts, key string) *Counts {
	c, ok := m[key]
	if !ok {
		c = &Counts{}
		m[key] = c
	}
	return c
}

func (rep *Report) flag(r Record, property, detail string) {
	rep.Violations = append(rep.Violations, Violation{
		Index: r.Index, Seed: r.Seed, SpecID: r.SpecID,
		Protocol: r.Protocol, Property: property, Detail: detail,
	})
}

// Clean reports whether the population saw no property violations and
// no errors.
func (rep *Report) Clean() bool { return len(rep.Violations) == 0 }

// WriteJSON renders the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Fprint renders the report as human-readable tables. Output is fully
// deterministic (map slices are emitted in sorted key order).
func (rep *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "fleet sweep: %d deals\n\n", rep.Total.Runs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "slice\truns\tcommitted\taborted\tmixed\tunsettled\terrors\tcommit rate")
	printCounts := func(name string, c Counts) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f%%\n",
			name, c.Runs, c.Committed, c.Aborted, c.Mixed, c.Unsettled, c.Errored, 100*c.CommitRate())
	}
	printCounts("total", rep.Total)
	printCounts("fully compliant", rep.FullyCompliant)
	printCounts("adversarial", rep.Adversarial)
	for _, key := range sortedKeys(rep.ByShape) {
		printCounts("shape="+key, *rep.ByShape[key])
	}
	for _, key := range sortedKeys(rep.ByProtocol) {
		printCounts("protocol="+key, *rep.ByProtocol[key])
	}
	tw.Flush()

	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tcount\tmin\tmean\tp50\tp90\tp99\tmax")
	fmt.Fprintf(tw, "gas\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
		rep.Gas.Count, rep.Gas.Min, rep.Gas.Mean, rep.Gas.P50, rep.Gas.P90, rep.Gas.P99, rep.Gas.Max)
	fmt.Fprintf(tw, "decision (Δ)\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
		rep.DeltaTime.Count, rep.DeltaTime.Min, rep.DeltaTime.Mean, rep.DeltaTime.P50,
		rep.DeltaTime.P90, rep.DeltaTime.P99, rep.DeltaTime.Max)
	tw.Flush()

	if len(rep.Violations) > 0 {
		fmt.Fprintf(w, "\nPROPERTY VIOLATIONS (%d) — replay with the flagged seed:\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintf(w, "  deal %d seed %d spec %s (%s): %s — %s\n",
				v.Index, v.Seed, v.SpecID, v.Protocol, v.Property, v.Detail)
		}
	} else {
		fmt.Fprintf(w, "\nno safety/liveness violations among compliant parties\n")
	}
}

func sortedKeys(m map[string]*Counts) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
