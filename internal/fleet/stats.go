package fleet

import (
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"xdeal/internal/arena"
	"xdeal/internal/engine"
	"xdeal/internal/obs"
)

// Dist summarizes a sample distribution with percentiles.
type Dist struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// NewDist computes a Dist over the samples (order irrelevant).
func NewDist(samples []float64) Dist {
	d := Dist{Count: len(samples)}
	if d.Count == 0 {
		return d
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	d.Min, d.Max = s[0], s[len(s)-1]
	d.Mean = sum / float64(len(s))
	d.P50 = percentile(s, 0.50)
	d.P90 = percentile(s, 0.90)
	d.P99 = percentile(s, 0.99)
	return d
}

// percentile returns the nearest-rank percentile of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// sketchGamma is the Sketch's log-bucket base: values within the same
// bucket differ by at most 2%, which bounds the percentile error.
const sketchGamma = 1.02

// Sketch is a constant-memory streaming summary of a sample
// distribution: count, sum, min and max are exact; percentiles come
// from a log-bucketed histogram at ~2% relative resolution (a DDSketch
// in miniature). Adding a sample is O(1) and the bucket count is
// bounded by the dynamic range of the data, not the sample count — so
// populations of millions of deals aggregate in constant memory. The
// summary is order-independent, so streaming and batch folds agree.
type Sketch struct {
	count    int
	sum      float64
	min, max float64
	nonpos   int // samples ≤ 0, kept out of the log buckets
	buckets  map[int]int
}

// Add folds one sample into the sketch.
func (s *Sketch) Add(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	if v <= 0 {
		s.nonpos++
		return
	}
	if s.buckets == nil {
		s.buckets = make(map[int]int)
	}
	s.buckets[int(math.Floor(math.Log(v)/math.Log(sketchGamma)))]++
}

// Dist summarizes the sketch. Min, max and mean are exact; the
// percentiles are bucket representatives, within 2% of the true value.
func (s *Sketch) Dist() Dist {
	d := Dist{Count: s.count}
	if s.count == 0 {
		return d
	}
	d.Min, d.Max = s.min, s.max
	d.Mean = s.sum / float64(s.count)
	idxs := make([]int, 0, len(s.buckets))
	for i := range s.buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	quantile := func(p float64) float64 {
		rank := int(math.Ceil(p * float64(s.count)))
		if rank <= s.nonpos {
			return 0 // non-positive samples sort below every bucket
		}
		seen := s.nonpos
		for _, i := range idxs {
			seen += s.buckets[i]
			if seen >= rank {
				// Geometric bucket midpoint, clamped to the observed range.
				v := math.Pow(sketchGamma, float64(i)+0.5)
				return math.Min(math.Max(v, s.min), s.max)
			}
		}
		return s.max
	}
	d.P50 = quantile(0.50)
	d.P90 = quantile(0.90)
	d.P99 = quantile(0.99)
	return d
}

// Violation flags one property violation with everything needed to
// replay the offending run.
type Violation struct {
	Index    int    `json:"index"`
	Seed     uint64 `json:"seed"`
	SpecID   string `json:"spec"`
	Protocol string `json:"protocol"`
	Property string `json:"property"` // "safety (P1)" | "liveness (P2)" | "strong liveness (P3)"
	Detail   string `json:"detail"`
}

// Counts tallies outcomes for one slice of the population.
type Counts struct {
	Runs      int `json:"runs"`
	Committed int `json:"committed"`
	Aborted   int `json:"aborted"`
	Mixed     int `json:"mixed"` // finalized inconsistently (non-atomic)
	// Unsettled runs ended atomically but with some escrow never
	// finalized — e.g. a deviator poisoned its escrow's Dinfo and kept
	// everyone else out (its own loss, not a violation).
	Unsettled int `json:"unsettled"`
	Errored   int `json:"errored"`
}

func (c *Counts) add(r Record) {
	c.Runs++
	switch {
	case r.Err != "":
		c.Errored++
	case r.Committed:
		c.Committed++
	case r.Aborted:
		c.Aborted++
	case !r.Atomic:
		c.Mixed++
	default:
		c.Unsettled++
	}
}

// CommitRate returns committed / runs (0 for an empty slice).
func (c Counts) CommitRate() float64 {
	if c.Runs == 0 {
		return 0
	}
	return float64(c.Committed) / float64(c.Runs)
}

// AbortRate returns aborted / runs (0 for an empty slice).
func (c Counts) AbortRate() float64 {
	if c.Runs == 0 {
		return 0
	}
	return float64(c.Aborted) / float64(c.Runs)
}

// Report aggregates a fleet sweep into population statistics. It is a
// pure function of the records folded into it, in fold order — so it is
// identical for every worker count that produced them, and identical
// between batch (Aggregate) and streaming (Aggregator) aggregation.
type Report struct {
	Total Counts `json:"total"`
	// FullyCompliant covers runs with no adversaries and no outages —
	// the slice Property 3 (strong liveness) promises will commit.
	FullyCompliant Counts `json:"fully_compliant"`
	// Adversarial covers runs with at least one deviating party.
	Adversarial Counts `json:"adversarial"`

	ByShape    map[string]*Counts `json:"by_shape"`
	ByProtocol map[string]*Counts `json:"by_protocol"`

	// Gas and DeltaTime summarize per-deal gas and decision latency (in
	// Δ units) over finalized runs. Percentiles are sketch estimates
	// (within 2%); count, min, max and mean are exact.
	Gas       Dist `json:"gas"`
	DeltaTime Dist `json:"delta_time"`

	// Phases localizes decision latency: per-protocol distributions of
	// each lifecycle phase span (escrow, transfer, validation, decision,
	// total), in Δ units. Nil only when no folded record carried spans.
	Phases *PhasesBlock `json:"phases,omitempty"`

	// CriticalPath attributes decision latency to cause buckets
	// (protocol wait, block queueing, fee pricing-out, adversary,
	// scheduling slack): per-bucket shares by protocol and adversary
	// mix. Always on — computed post-hoc from retained receipts — and
	// nil only when no folded deal reached a decision.
	CriticalPath *CriticalPathBlock `json:"critical_path,omitempty"`

	// Violations flags every Property 1–3 violation with its seed. A
	// pathological population is truncated at maxViolations flags;
	// ViolationsTruncated counts the overflow (still a dirty report).
	Violations          []Violation `json:"violations,omitempty"`
	ViolationsTruncated int         `json:"violations_truncated,omitempty"`

	// Interference carries the arena sweep's cross-deal contention
	// metrics; nil outside arena mode.
	Interference *Interference `json:"interference,omitempty"`

	// OrderingGames carries the fee-market metrics; nil unless the
	// sweep ran with fee markets enabled. Present in both isolated and
	// arena sweeps.
	OrderingGames *OrderingGames `json:"ordering_games,omitempty"`

	// Hedging carries the sore-loser defense metrics; nil unless the
	// sweep ran hedged arenas (ArenaOptions.Hedge).
	Hedging *Hedging `json:"hedging,omitempty"`

	// BundleAuctions carries the combinatorial block-space auction
	// metrics; nil unless the sweep ran bundled arenas
	// (ArenaOptions.Bundles).
	BundleAuctions *BundleAuctions `json:"bundle_auctions,omitempty"`

	// ReplayCommand, when set by the caller, is a printf format with one
	// %d verb for a deal index; Fprint uses it to print a ready-to-paste
	// replay command next to each flagged violation. Not serialized.
	ReplayCommand string `json:"-"`
}

// Interference summarizes cross-deal contention in an arena sweep: how
// much sharing chains inflated decision latencies relative to each deal
// running alone, and what the adaptive adversaries did and cost.
type Interference struct {
	Arenas int `json:"arenas"`
	Chains int `json:"chains"`
	// LatencyInflation distributes per-deal arena/solo decision-latency
	// ratios; only deals that decided in both worlds contribute.
	LatencyInflation Dist `json:"latency_inflation"`
	// Sore-loser damage: triggers (parties that backed out on a price
	// move), deals that consequently failed to commit, and the fungible
	// value compliant counterparties had locked in them for nothing.
	SoreLoserTriggers int    `json:"sore_loser_triggers"`
	SoreLoserDeals    int    `json:"sore_loser_deals"`
	SoreLoserLoss     uint64 `json:"sore_loser_loss"`
	// Mempool races run and won by front-running parties.
	FrontRunAttempts int `json:"front_run_attempts"`
	FrontRunWins     int `json:"front_run_wins"`
	// VictimExclusionBlocks counts blocks — across all arenas with a
	// fee market, bundled or not — in which an adversarial deal's work
	// was included while a rival deal's arrived work was deferred past
	// capacity. It is the uniform exclusion currency that makes
	// single-tx fee bidding and bundle griefing comparable seed for
	// seed.
	VictimExclusionBlocks int `json:"victim_exclusion_blocks,omitempty"`
}

// OrderingGames summarizes a fee-market sweep: what block space cost,
// who paid for position, and whether bidding for it beat merely racing
// for it.
type OrderingGames struct {
	// BaseFee and TipBudget echo the sweep's fee configuration.
	BaseFee   uint64 `json:"base_fee"`
	TipBudget uint64 `json:"tip_budget"`
	// FeesBurned / FeesTipped total the population's fee flows.
	FeesBurned uint64 `json:"fees_burned"`
	FeesTipped uint64 `json:"fees_tipped"`
	// FeePerCommit is the mean fee spend attributable to each committed
	// deal — the cost-of-commerce gate CI budgets against.
	CommittedDeals int     `json:"committed_deals"`
	FeePerCommit   float64 `json:"fee_per_commit"`
	// Plain gossip races vs fee-bid races, run and won. Fee bidders
	// outbid the transactions they race, so their win rate should
	// dominate the plain racers' on the same seeds.
	FrontRunAttempts int `json:"front_run_attempts"`
	FrontRunWins     int `json:"front_run_wins"`
	FeeBidAttempts   int `json:"fee_bid_attempts"`
	FeeBidWins       int `json:"fee_bid_wins"`
	// InclusionDelay distributes mempool queuing delay by tip decile
	// (deciles of included transactions ranked by tip, ascending —
	// higher deciles should wait less; empty deciles are merged into
	// the next non-empty one).
	InclusionDelay []TipDecile `json:"inclusion_delay_by_tip_decile"`
}

// Hedging summarizes a hedged sweep: what sore-loser insurance cost,
// what it paid, and how much of the attack's damage it absorbed.
type Hedging struct {
	// Collateral and VolWindow echo the sweep's hedge configuration.
	Collateral float64 `json:"collateral"`
	VolWindow  int     `json:"vol_window"`
	// Binds and Settles count positions opened and settled.
	Binds   int `json:"binds"`
	Settles int `json:"settles"`
	// PremiumsPaid is the gross premium spend at bind; PremiumsRefunded
	// returned to holders whose cover went unused (net of the pool's
	// retention); PayoutsClaimed is the collateral paid to sore-loser
	// victims.
	PremiumsPaid     uint64 `json:"premiums_paid"`
	PremiumsRefunded uint64 `json:"premiums_refunded"`
	PayoutsClaimed   uint64 `json:"payouts_claimed"`
	// GrossSoreLoserLoss mirrors Interference.SoreLoserLoss;
	// ResidualSoreLoserLoss is what remains after payouts absorbed it
	// (per-deal, floored at zero). The defense's headline: residual
	// shrinking toward zero while gross stays put.
	GrossSoreLoserLoss    uint64 `json:"gross_sore_loser_loss"`
	ResidualSoreLoserLoss uint64 `json:"residual_sore_loser_loss"`
	// PremiumByVolDecile distributes premium cost (as % of insured
	// collateral) across deciles of binds ranked by the realized
	// base-fee volatility they were priced at — congested chains should
	// sit in the upper deciles at visibly higher rates.
	PremiumByVolDecile []VolDecile `json:"premium_by_vol_decile"`
}

// BundleAuctions summarizes a bundled sweep: how deals fared bidding
// for whole blocks, what bundle griefing attempted and landed, and how
// much timelock headroom winning bundles had left by bid level.
type BundleAuctions struct {
	// Budget echoes the sweep's per-griefer bid-increment cap.
	Budget uint64 `json:"bundle_budget"`
	// Auctions counts combinatorial auctions run (per chain per
	// block); Wins and Defers count bundle participations won and
	// deferred across them.
	Auctions int `json:"auctions"`
	Wins     int `json:"wins"`
	Defers   int `json:"defers"`
	// ExclusionAttempts counts bundle-griefing raises; Exclusion-
	// Successes counts auctions in which a targeted victim's bundle
	// was deferred while the griefer's won. A raise is a standing bid
	// — one attempt can land exclusions in many consecutive blocks, so
	// successes may exceed attempts.
	ExclusionAttempts  int `json:"exclusion_attempts"`
	ExclusionSuccesses int `json:"exclusion_successes"`
	// VictimExclusionBlocks mirrors Interference.VictimExclusionBlocks
	// for the bundled sweep (the tx-level twin reports the same metric
	// in its Interference block, which is what the two get compared on).
	VictimExclusionBlocks int `json:"victim_exclusion_blocks"`
	// SlackByBidDecile distributes winning bundles' deadline slack at
	// inclusion (in Δ of the owning deal) across deciles of wins
	// ranked by per-slot bid, ascending — desperate (high) bids should
	// sit in the upper deciles at visibly thinner slack.
	SlackByBidDecile []BidDecile `json:"deadline_slack_by_bid_decile"`
}

// WinRate is wins / (wins + defers) (0 with no participations).
func (b *BundleAuctions) WinRate() float64 {
	return winRate(b.Wins, b.Wins+b.Defers)
}

// DeferRate is defers / (wins + defers) — the CI-gated starvation
// signal: a population whose bundles mostly lose is a population whose
// timelocks are at risk.
func (b *BundleAuctions) DeferRate() float64 {
	return winRate(b.Defers, b.Wins+b.Defers)
}

// BidDecile is one per-slot-bid decile's deadline-slack summary.
type BidDecile struct {
	Decile     int    `json:"decile"`       // 1..10, by ascending per-slot bid
	MaxPerSlot uint64 `json:"max_per_slot"` // largest per-slot bid in the decile
	Wins       int    `json:"wins"`
	// MeanSlackDelta is the decile's mean deadline slack at inclusion,
	// in Δ units of the owning deals (negative: included past the
	// timelock horizon).
	MeanSlackDelta float64 `json:"mean_slack_delta"`
}

// bundleAgg folds bundle observations in constant memory: counters
// plus a per-slot-bid-keyed slack histogram (per-slot bids are small
// integers bounded by the bidder escalation and griefer budgets, so
// the key space stays tiny).
type bundleAgg struct {
	budget                uint64
	auctions              int
	wins, defers          int
	attempts, successes   int
	victimExclusionBlocks int
	byBid                 map[uint64]*bidSlackAgg
}

type bidSlackAgg struct {
	wins          int
	slackMilliSum int64
}

// EnableBundles arms the bundle-auctions block: the report will carry
// it even for an empty population, echoing the sweep's configuration.
func (a *Aggregator) EnableBundles(budget uint64) {
	if a.bundles == nil {
		a.bundles = &bundleAgg{byBid: make(map[uint64]*bidSlackAgg)}
	}
	a.bundles.budget = budget
}

// AddBundleArena folds one arena's bundle metrics (arena order, so the
// report stays byte-identical for any worker count).
func (a *Aggregator) AddBundleArena(inter arena.Interference) {
	if a.bundles == nil {
		return
	}
	b := a.bundles
	b.auctions += inter.BundleAuctions
	b.wins += inter.BundleWins
	b.defers += inter.BundleDefers
	b.attempts += inter.ExclusionAttempts
	b.successes += inter.ExclusionSuccesses
	b.victimExclusionBlocks += inter.VictimExclusionBlocks
	for _, s := range inter.BundleSamples {
		agg := b.byBid[s.PerSlot]
		if agg == nil {
			agg = &bidSlackAgg{}
			b.byBid[s.PerSlot] = agg
		}
		agg.wins++
		agg.slackMilliSum += s.SlackMilli
	}
}

// bundleAuctions finalizes the block.
func (b *bundleAgg) bundleAuctions() *BundleAuctions {
	return &BundleAuctions{
		Budget:                b.budget,
		Auctions:              b.auctions,
		Wins:                  b.wins,
		Defers:                b.defers,
		ExclusionAttempts:     b.attempts,
		ExclusionSuccesses:    b.successes,
		VictimExclusionBlocks: b.victimExclusionBlocks,
		SlackByBidDecile:      b.bidDeciles(),
	}
}

// bidDeciles splits the per-slot-bid-keyed slack histogram into
// deciles of wins ranked by bid (foldDeciles carries the shared
// whole-bucket assignment, so this table can never diverge from the
// tip-delay and hedge-premium ones).
func (b *bundleAgg) bidDeciles() []BidDecile {
	bids := make([]uint64, 0, len(b.byBid))
	total := 0
	for bid, agg := range b.byBid {
		bids = append(bids, bid)
		total += agg.wins
	}
	if total == 0 {
		return nil
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	var out []BidDecile
	var slackSum int64
	foldDeciles(bids, total,
		func(bid uint64) int { return b.byBid[bid].wins },
		func(bid uint64) { slackSum += b.byBid[bid].slackMilliSum },
		func(decile int, maxBid uint64, wins int) {
			out = append(out, BidDecile{
				Decile: decile, MaxPerSlot: maxBid, Wins: wins,
				MeanSlackDelta: float64(slackSum) / 1000 / float64(wins),
			})
			slackSum = 0
		})
	return out
}

// Absorbed is the fraction of the gross sore-loser loss the payouts
// absorbed (0 with no loss).
func (h *Hedging) Absorbed() float64 {
	if h.GrossSoreLoserLoss == 0 {
		return 0
	}
	return 1 - float64(h.ResidualSoreLoserLoss)/float64(h.GrossSoreLoserLoss)
}

// VolDecile is one base-fee-volatility decile's premium summary.
type VolDecile struct {
	Decile    int `json:"decile"`      // 1..10, by ascending realized volatility
	MaxVolBps int `json:"max_vol_bps"` // largest volatility in the decile, basis points
	Binds     int `json:"binds"`
	// MeanPremiumPct is the decile's mean premium as a percentage of
	// the collateral it insured.
	MeanPremiumPct float64 `json:"mean_premium_pct"`
}

// hedgeAgg folds hedge observations in constant memory: counters plus
// a volatility-keyed histogram (volatilities arrive quantized to basis
// points, so the key space stays tiny).
type hedgeAgg struct {
	collateral float64
	volWindow  int
	binds      int
	settles    int
	premiums   uint64
	refunds    uint64
	payouts    uint64
	gross      uint64
	residual   uint64
	byVol      map[int]*volPremiumAgg
}

type volPremiumAgg struct {
	binds         int
	premiumSum    uint64
	collateralSum uint64
}

// EnableHedging arms the hedging block: the report will carry it even
// for an empty population, echoing the sweep's configuration.
func (a *Aggregator) EnableHedging(collateral float64, volWindow int) {
	if a.hedge == nil {
		a.hedge = &hedgeAgg{byVol: make(map[int]*volPremiumAgg)}
	}
	a.hedge.collateral, a.hedge.volWindow = collateral, volWindow
}

// AddHedgeArena folds one arena's hedge metrics (arena order, so the
// report stays byte-identical for any worker count).
func (a *Aggregator) AddHedgeArena(inter arena.Interference) {
	if a.hedge == nil {
		return
	}
	h := a.hedge
	h.binds += inter.HedgeBinds
	h.settles += inter.HedgeSettles
	h.premiums += inter.PremiumsPaid
	h.refunds += inter.PremiumsRefunded
	h.payouts += inter.PayoutsClaimed
	h.gross += inter.SoreLoserLoss
	h.residual += inter.ResidualSoreLoserLoss
	for _, s := range inter.HedgeSamples {
		v := h.byVol[s.VolBps]
		if v == nil {
			v = &volPremiumAgg{}
			h.byVol[s.VolBps] = v
		}
		v.binds++
		v.premiumSum += s.Premium
		v.collateralSum += s.Collateral
	}
}

// hedging finalizes the block.
func (h *hedgeAgg) hedging() *Hedging {
	return &Hedging{
		Collateral:            h.collateral,
		VolWindow:             h.volWindow,
		Binds:                 h.binds,
		Settles:               h.settles,
		PremiumsPaid:          h.premiums,
		PremiumsRefunded:      h.refunds,
		PayoutsClaimed:        h.payouts,
		GrossSoreLoserLoss:    h.gross,
		ResidualSoreLoserLoss: h.residual,
		PremiumByVolDecile:    h.volDeciles(),
	}
}

// volDeciles splits the volatility-keyed histogram into deciles of
// binds ranked by realized volatility (foldDeciles carries the shared
// whole-bucket assignment).
func (h *hedgeAgg) volDeciles() []VolDecile {
	vols := make([]int, 0, len(h.byVol))
	total := 0
	for v, agg := range h.byVol {
		vols = append(vols, v)
		total += agg.binds
	}
	if total == 0 {
		return nil
	}
	sort.Ints(vols)
	var out []VolDecile
	var premiumSum, collateralSum uint64
	foldDeciles(vols, total,
		func(v int) int { return h.byVol[v].binds },
		func(v int) {
			premiumSum += h.byVol[v].premiumSum
			collateralSum += h.byVol[v].collateralSum
		},
		func(decile int, maxVol int, binds int) {
			vd := VolDecile{Decile: decile, MaxVolBps: maxVol, Binds: binds}
			if collateralSum > 0 {
				vd.MeanPremiumPct = 100 * float64(premiumSum) / float64(collateralSum)
			}
			out = append(out, vd)
			premiumSum, collateralSum = 0, 0
		})
	return out
}

// WinRate returns wins/attempts (0 for none).
func winRate(wins, attempts int) float64 {
	if attempts == 0 {
		return 0
	}
	return float64(wins) / float64(attempts)
}

// FrontRunWinRate is the plain gossip racers' win rate.
func (o *OrderingGames) FrontRunWinRate() float64 {
	return winRate(o.FrontRunWins, o.FrontRunAttempts)
}

// FeeBidWinRate is the fee bidders' win rate.
func (o *OrderingGames) FeeBidWinRate() float64 {
	return winRate(o.FeeBidWins, o.FeeBidAttempts)
}

// TipDecile is one tip decile's queuing-delay summary.
type TipDecile struct {
	Decile    int     `json:"decile"`  // 1..10, by ascending tip rank
	MaxTip    uint64  `json:"max_tip"` // largest tip in the decile
	Count     int     `json:"count"`
	MeanDelay float64 `json:"mean_delay"` // mean ticks queued before inclusion
}

// feeAgg folds fee-market observations in constant memory: totals,
// race counters, and a tip-keyed delay histogram (tips are small
// integers bounded by the bid budget, so the key space stays tiny).
type feeAgg struct {
	baseFee, tipBudget uint64
	burned, tipped     uint64
	commitFees         uint64
	commits            int
	races, raceWins    int
	bids, bidWins      int
	tipDelay           map[uint64]*tipDelayAgg
}

type tipDelayAgg struct {
	count    int
	delaySum int64
}

// EnableFees arms the ordering-games block: the report will carry it
// even for an empty population, echoing the sweep's fee configuration.
func (a *Aggregator) EnableFees(baseFee, tipBudget uint64) {
	if a.fees == nil {
		a.fees = &feeAgg{tipDelay: make(map[uint64]*tipDelayAgg)}
	}
	a.fees.baseFee, a.fees.tipBudget = baseFee, tipBudget
}

// AddFeeWorld folds one shared world's fee summary (arena mode: totals
// and samples are per-substrate, not per-deal, so they fold once per
// arena in arena order).
func (a *Aggregator) AddFeeWorld(fees *engine.FeeSummary) {
	if fees == nil || a.fees == nil {
		return
	}
	a.fees.burned += fees.Burned
	a.fees.tipped += fees.Tipped
	a.fees.addSamples(fees.Samples)
}

// AddFeeRaces folds race counters metered outside records (arena mode).
func (a *Aggregator) AddFeeRaces(races, raceWins, bids, bidWins int) {
	if a.fees == nil {
		return
	}
	a.fees.races += races
	a.fees.raceWins += raceWins
	a.fees.bids += bids
	a.fees.bidWins += bidWins
}

func (f *feeAgg) addSamples(samples []engine.FeeSample) {
	for _, s := range samples {
		t := f.tipDelay[s.Tip]
		if t == nil {
			t = &tipDelayAgg{}
			f.tipDelay[s.Tip] = t
		}
		t.count++
		t.delaySum += s.Queued
	}
}

// orderingGames finalizes the block.
func (f *feeAgg) orderingGames() *OrderingGames {
	o := &OrderingGames{
		BaseFee:          f.baseFee,
		TipBudget:        f.tipBudget,
		FeesBurned:       f.burned,
		FeesTipped:       f.tipped,
		CommittedDeals:   f.commits,
		FrontRunAttempts: f.races,
		FrontRunWins:     f.raceWins,
		FeeBidAttempts:   f.bids,
		FeeBidWins:       f.bidWins,
	}
	if f.commits > 0 {
		o.FeePerCommit = float64(f.commitFees) / float64(f.commits)
	}
	o.InclusionDelay = f.deciles()
	return o
}

// foldDeciles assigns whole histogram buckets (keys ascending) to
// deciles of a total-item population: a bucket's items are consumed in
// key order against ceil(d·total/10) boundaries, so equal keys never
// straddle a boundary, and deciles left empty by a large bucket merge
// into the one that swallowed them. absorb folds a bucket's payload
// into the open decile; flush emits a finished decile (its index, the
// largest key it swallowed, its item count) and must reset the
// caller's payload accumulators. Shared by the tip-delay and
// hedge-premium decile tables so the two can never diverge.
func foldDeciles[K cmp.Ordered](keys []K, total int, count func(K) int, absorb func(K), flush func(decile int, maxKey K, items int)) {
	cum, d, open, items := 0, 1, 1, 0
	var maxKey K
	boundary := func(d int) int { return (d*total + 9) / 10 } // ceil(d·total/10)
	for _, k := range keys {
		absorb(k)
		items += count(k)
		maxKey = k
		cum += count(k)
		for d <= 10 && cum >= boundary(d) {
			d++
		}
		if d > open {
			flush(open, maxKey, items)
			open, items = d, 0
		}
	}
}

// deciles splits the tip-keyed histogram into deciles of included
// transactions ranked by tip.
func (f *feeAgg) deciles() []TipDecile {
	tips := make([]uint64, 0, len(f.tipDelay))
	total := 0
	for tip, agg := range f.tipDelay {
		tips = append(tips, tip)
		total += agg.count
	}
	if total == 0 {
		return nil
	}
	sort.Slice(tips, func(i, j int) bool { return tips[i] < tips[j] })
	var out []TipDecile
	var delaySum int64
	foldDeciles(tips, total,
		func(t uint64) int { return f.tipDelay[t].count },
		func(t uint64) { delaySum += f.tipDelay[t].delaySum },
		func(decile int, maxTip uint64, txs int) {
			out = append(out, TipDecile{
				Decile: decile, MaxTip: maxTip, Count: txs,
				MeanDelay: float64(delaySum) / float64(txs),
			})
			delaySum = 0
		})
	return out
}

// maxViolations bounds the violation list so even a population where
// everything is on fire aggregates in constant memory.
const maxViolations = 1000

// Aggregator folds Records into a Report incrementally, in constant
// memory: counters and sketches instead of sample slices. Fold order
// defines the report (violation order), so fold in index order.
type Aggregator struct {
	rep        *Report
	gas, dtime Sketch
	fees       *feeAgg              // nil unless EnableFees armed the ordering block
	hedge      *hedgeAgg            // nil unless EnableHedging armed the hedging block
	bundles    *bundleAgg           // nil unless EnableBundles armed the bundle block
	phases     map[string]*phaseAgg // protocol -> phase sketches, created on first span
	crit       map[string]*critAgg  // protocol|mix -> attribution sketches, created on first decided deal
	metrics    *obs.Registry        // nil unless EnableObs attached a registry
	flight     *obs.Recorder        // nil unless EnableObs attached a recorder
}

// EnableObs attaches the observability instruments: the registry gains
// fleet-level counters (deals run, violations) as records fold, and the
// flight recorder receives one evidence event per violation or error.
// Both are passive — the Report itself never changes.
func (a *Aggregator) EnableObs(metrics *obs.Registry, flight *obs.Recorder) {
	a.metrics = metrics
	a.flight = flight
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{rep: &Report{
		ByShape:    make(map[string]*Counts),
		ByProtocol: make(map[string]*Counts),
	}}
}

// Add folds one record into the aggregate.
func (a *Aggregator) Add(r Record) {
	rep := a.rep
	rep.Total.add(r)
	if r.Adversaries == 0 && !r.Outage {
		rep.FullyCompliant.add(r)
	}
	if r.Adversaries > 0 {
		rep.Adversarial.add(r)
	}
	bucket(rep.ByShape, r.Shape).add(r)
	bucket(rep.ByProtocol, r.Protocol).add(r)
	if r.Err == "" {
		a.gas.Add(float64(r.Gas))
		if r.DeltaTime > 0 {
			a.dtime.Add(r.DeltaTime)
		}
	}
	if r.Spans != nil {
		if a.phases == nil {
			a.phases = make(map[string]*phaseAgg)
		}
		p := a.phases[r.Protocol]
		if p == nil {
			p = &phaseAgg{}
			a.phases[r.Protocol] = p
		}
		p.add(r.Spans)
	}
	a.addCrit(r)
	if r.Fee != nil && a.fees != nil {
		f := a.fees
		f.burned += r.Fee.Burned
		f.tipped += r.Fee.Tipped
		f.races += r.Fee.Races
		f.raceWins += r.Fee.RaceWins
		f.bids += r.Fee.Bids
		f.bidWins += r.Fee.BidWins
		f.addSamples(r.Fee.Samples)
		if r.Committed {
			f.commits++
			f.commitFees += r.Fee.DealFees
		}
	}
	for _, v := range r.SafetyViolations {
		rep.flag(r, "safety (P1)", v)
	}
	for _, v := range r.LivenessViolations {
		rep.flag(r, "liveness (P2)", v)
	}
	p3 := r.Err == "" && r.Adversaries == 0 && !r.Outage && r.Sequenceable && !r.Committed
	if p3 {
		rep.flag(r, "strong liveness (P3)", "all parties compliant yet the deal did not commit")
	}
	if r.Err != "" {
		rep.flag(r, "error", r.Err)
	}
	a.metrics.Counter("fleet.deals_run").Inc()
	if flags := len(r.SafetyViolations) + len(r.LivenessViolations); flags > 0 {
		a.metrics.Counter("fleet.violations").Add(uint64(flags))
	}
	if p3 {
		a.metrics.Counter("fleet.violations").Inc()
	}
	if r.Err != "" {
		a.metrics.Counter("fleet.errors").Inc()
	}
	recordFlight(a.flight, r, p3)
}

// Report finalizes and returns the aggregate. The aggregator may keep
// folding afterwards; Report is cheap and repeatable.
func (a *Aggregator) Report() *Report {
	a.rep.Gas = a.gas.Dist()
	a.rep.DeltaTime = a.dtime.Dist()
	if len(a.phases) > 0 {
		pb := &PhasesBlock{}
		protos := make([]string, 0, len(a.phases))
		for p := range a.phases {
			protos = append(protos, p)
		}
		sort.Strings(protos)
		for _, p := range protos {
			pb.Protocols = append(pb.Protocols, ProtocolPhases{
				Protocol: p,
				Phases:   a.phases[p].phases(),
			})
		}
		a.rep.Phases = pb
	}
	a.rep.CriticalPath = a.criticalPath()
	if a.fees != nil {
		a.rep.OrderingGames = a.fees.orderingGames()
	}
	if a.hedge != nil {
		a.rep.Hedging = a.hedge.hedging()
	}
	if a.bundles != nil {
		a.rep.BundleAuctions = a.bundles.bundleAuctions()
	}
	return a.rep
}

// Aggregate folds records into a report (the batch face of Aggregator).
func Aggregate(records []Record) *Report {
	agg := NewAggregator()
	for _, r := range records {
		agg.Add(r)
	}
	return agg.Report()
}

func bucket(m map[string]*Counts, key string) *Counts {
	c, ok := m[key]
	if !ok {
		c = &Counts{}
		m[key] = c
	}
	return c
}

func (rep *Report) flag(r Record, property, detail string) {
	if len(rep.Violations) >= maxViolations {
		rep.ViolationsTruncated++
		return
	}
	rep.Violations = append(rep.Violations, Violation{
		Index: r.Index, Seed: r.Seed, SpecID: r.SpecID,
		Protocol: r.Protocol, Property: property, Detail: detail,
	})
}

// Clean reports whether the population saw no property violations and
// no errors.
func (rep *Report) Clean() bool {
	return len(rep.Violations) == 0 && rep.ViolationsTruncated == 0
}

// WriteJSON renders the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Fprint renders the report as human-readable tables. Output is fully
// deterministic (map slices are emitted in sorted key order).
func (rep *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "fleet sweep: %d deals\n\n", rep.Total.Runs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "slice\truns\tcommitted\taborted\tmixed\tunsettled\terrors\tcommit rate")
	printCounts := func(name string, c Counts) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f%%\n",
			name, c.Runs, c.Committed, c.Aborted, c.Mixed, c.Unsettled, c.Errored, 100*c.CommitRate())
	}
	printCounts("total", rep.Total)
	printCounts("fully compliant", rep.FullyCompliant)
	printCounts("adversarial", rep.Adversarial)
	for _, key := range sortedKeys(rep.ByShape) {
		printCounts("shape="+key, *rep.ByShape[key])
	}
	for _, key := range sortedKeys(rep.ByProtocol) {
		printCounts("protocol="+key, *rep.ByProtocol[key])
	}
	tw.Flush()

	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tcount\tmin\tmean\tp50\tp90\tp99\tmax")
	fmt.Fprintf(tw, "gas\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
		rep.Gas.Count, rep.Gas.Min, rep.Gas.Mean, rep.Gas.P50, rep.Gas.P90, rep.Gas.P99, rep.Gas.Max)
	fmt.Fprintf(tw, "decision (Δ)\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
		rep.DeltaTime.Count, rep.DeltaTime.Min, rep.DeltaTime.Mean, rep.DeltaTime.P50,
		rep.DeltaTime.P90, rep.DeltaTime.P99, rep.DeltaTime.Max)
	if inf := rep.Interference; inf != nil {
		li := inf.LatencyInflation
		fmt.Fprintf(tw, "latency inflation (×)\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			li.Count, li.Min, li.Mean, li.P50, li.P90, li.P99, li.Max)
	}
	tw.Flush()

	if ph := rep.Phases; ph != nil {
		fmt.Fprintf(w, "\nphase latency (Δ units, by protocol):\n")
		ptw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(ptw, "  protocol\tphase\tcount\tmean\tp50\tp90\tp99\tmax")
		for _, pp := range ph.Protocols {
			for _, pd := range pp.Phases {
				fmt.Fprintf(ptw, "  %s\t%s\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
					pp.Protocol, pd.Phase, pd.Count, pd.Mean, pd.P50, pd.P90, pd.P99, pd.Max)
			}
		}
		ptw.Flush()
	}

	if cb := rep.CriticalPath; cb != nil {
		fprintCriticalPath(w, cb)
	}

	if inf := rep.Interference; inf != nil {
		fmt.Fprintf(w, "\ninterference (%d arenas × %d shared chains):\n", inf.Arenas, inf.Chains)
		fmt.Fprintf(w, "  sore losers: %d triggered, %d deals killed, %d in compliant deposits locked for nothing\n",
			inf.SoreLoserTriggers, inf.SoreLoserDeals, inf.SoreLoserLoss)
		fmt.Fprintf(w, "  front-running: %d mempool races, %d won\n",
			inf.FrontRunAttempts, inf.FrontRunWins)
		if inf.VictimExclusionBlocks > 0 {
			fmt.Fprintf(w, "  exclusion: %d blocks included adversarial work while deferring a victim deal's\n",
				inf.VictimExclusionBlocks)
		}
	}

	if og := rep.OrderingGames; og != nil {
		fmt.Fprintf(w, "\nordering games (fee market: base fee %d, tip budget %d):\n", og.BaseFee, og.TipBudget)
		fmt.Fprintf(w, "  fees: %d burned, %d tipped; %.1f per committed deal (%d committed)\n",
			og.FeesBurned, og.FeesTipped, og.FeePerCommit, og.CommittedDeals)
		fmt.Fprintf(w, "  races: plain %d/%d won (%.1f%%), fee-bid %d/%d won (%.1f%%)\n",
			og.FrontRunWins, og.FrontRunAttempts, 100*og.FrontRunWinRate(),
			og.FeeBidWins, og.FeeBidAttempts, 100*og.FeeBidWinRate())
		if len(og.InclusionDelay) > 0 {
			fmt.Fprintf(w, "  inclusion delay by tip decile:\n")
			dtw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(dtw, "    decile\tmax tip\ttxs\tmean delay")
			for _, td := range og.InclusionDelay {
				fmt.Fprintf(dtw, "    d%d\t%d\t%d\t%.1f\n", td.Decile, td.MaxTip, td.Count, td.MeanDelay)
			}
			dtw.Flush()
		}
	}

	if b := rep.BundleAuctions; b != nil {
		fmt.Fprintf(w, "\nbundle auctions (combinatorial block space, griefer budget %d):\n", b.Budget)
		fmt.Fprintf(w, "  auctions: %d run; bundles %d won, %d deferred (%.1f%% win, %.1f%% defer)\n",
			b.Auctions, b.Wins, b.Defers, 100*b.WinRate(), 100*b.DeferRate())
		fmt.Fprintf(w, "  griefing: %d exclusion bids, %d landed; %d victim-exclusion blocks\n",
			b.ExclusionAttempts, b.ExclusionSuccesses, b.VictimExclusionBlocks)
		if len(b.SlackByBidDecile) > 0 {
			fmt.Fprintf(w, "  deadline slack by per-slot-bid decile:\n")
			btw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(btw, "    decile\tmax bid/slot\twins\tmean slack (Δ)")
			for _, bd := range b.SlackByBidDecile {
				fmt.Fprintf(btw, "    d%d\t%d\t%d\t%.2f\n", bd.Decile, bd.MaxPerSlot, bd.Wins, bd.MeanSlackDelta)
			}
			btw.Flush()
		}
	}

	if h := rep.Hedging; h != nil {
		fmt.Fprintf(w, "\nhedging (collateral ×%g, premium vol window %d blocks):\n", h.Collateral, h.VolWindow)
		fmt.Fprintf(w, "  cover: %d positions bound, %d settled; premiums %d paid, %d refunded\n",
			h.Binds, h.Settles, h.PremiumsPaid, h.PremiumsRefunded)
		fmt.Fprintf(w, "  payouts: %d claimed on post-trigger aborts\n", h.PayoutsClaimed)
		fmt.Fprintf(w, "  sore-loser loss: %d gross -> %d residual (%.1f%% absorbed)\n",
			h.GrossSoreLoserLoss, h.ResidualSoreLoserLoss, 100*h.Absorbed())
		if len(h.PremiumByVolDecile) > 0 {
			fmt.Fprintf(w, "  premium by base-fee-volatility decile:\n")
			htw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(htw, "    decile\tmax vol (bps)\tbinds\tpremium %")
			for _, vd := range h.PremiumByVolDecile {
				fmt.Fprintf(htw, "    d%d\t%d\t%d\t%.2f\n", vd.Decile, vd.MaxVolBps, vd.Binds, vd.MeanPremiumPct)
			}
			htw.Flush()
		}
	}

	if total := len(rep.Violations) + rep.ViolationsTruncated; total > 0 {
		fmt.Fprintf(w, "\nPROPERTY VIOLATIONS (%d) — replay with the flagged seed:\n", total)
		for _, v := range rep.Violations {
			fmt.Fprintf(w, "  deal %d seed %d spec %s (%s): %s — %s\n",
				v.Index, v.Seed, v.SpecID, v.Protocol, v.Property, v.Detail)
			if rep.ReplayCommand != "" {
				fmt.Fprintf(w, "    replay: "+rep.ReplayCommand+"\n", v.Index)
			}
		}
		if rep.ViolationsTruncated > 0 {
			fmt.Fprintf(w, "  ... and %d more (truncated)\n", rep.ViolationsTruncated)
		}
	} else {
		fmt.Fprintf(w, "\nno safety/liveness violations among compliant parties\n")
	}
}

func sortedKeys(m map[string]*Counts) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
