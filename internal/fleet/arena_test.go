package fleet

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"xdeal/internal/sim"
)

// arenaOpts is the canonical arena-mode population used across tests:
// three shared worlds of twenty deals each.
func arenaOpts(deals, workers int) Options {
	return Options{
		Deals:   deals,
		Workers: workers,
		Gen: GenOptions{
			Seed:          7,
			Protocol:      "mixed",
			AdversaryRate: 0.35,
		},
		Arena: &ArenaOptions{DealsPerArena: 20, Chains: 3, Baselines: true},
	}
}

func renderedArenaReport(t *testing.T, opts Options) string {
	t.Helper()
	rep, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep.ReplayCommand = "dealsweep -seed 7 -arena -replay %d"
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFleetArenaDeterministicAcrossWorkerCounts: arena sweeps keep the
// fleet's contract — the report is byte-identical for any pool size,
// because each arena is a single-threaded deterministic simulation and
// results fold in arena order. Run under -race this also exercises the
// arena fan-out for data races.
func TestFleetArenaDeterministicAcrossWorkerCounts(t *testing.T) {
	deals := 60
	if testing.Short() {
		deals = 20 // equality check only: scale the sweep, keep the pool racing
	}
	want := renderedArenaReport(t, arenaOpts(deals, 1))
	for _, workers := range []int{2, 4, 8} {
		if got := renderedArenaReport(t, arenaOpts(deals, workers)); got != want {
			t.Fatalf("arena report at %d workers diverges from serial run:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestFleetArenaInterferenceMetrics: the arena report carries the
// interference block — arena count, inflation distribution with one
// sample per baselined deal, and live adversary counters — and the
// population stays free of compliant-party violations.
func TestFleetArenaInterferenceMetrics(t *testing.T) {
	rep, err := Sweep(arenaOpts(60, 4))
	if err != nil {
		t.Fatal(err)
	}
	inf := rep.Interference
	if inf == nil {
		t.Fatal("arena sweep produced no interference metrics")
	}
	if inf.Arenas != 3 || inf.Chains != 3 {
		t.Fatalf("interference geometry wrong: %+v", inf)
	}
	if inf.LatencyInflation.Count == 0 {
		t.Fatal("baselines on, yet no latency-inflation samples")
	}
	if inf.FrontRunAttempts == 0 {
		t.Fatal("no front-run races at 35% adversary rate; the mempool hook is dead")
	}
	if inf.FrontRunWins > inf.FrontRunAttempts {
		t.Fatalf("won %d of %d races", inf.FrontRunWins, inf.FrontRunAttempts)
	}
	if !rep.Clean() {
		var buf bytes.Buffer
		rep.Fprint(&buf)
		t.Fatalf("arena population not clean:\n%s", buf.String())
	}
	if rep.Total.Runs != 60 {
		t.Fatalf("ran %d deals, want 60", rep.Total.Runs)
	}
	// Isolated-mode sweeps must not grow an interference block.
	plain, err := Sweep(sweepOpts(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Interference != nil {
		t.Fatal("isolated sweep reports interference")
	}
}

// TestFleetArenaReplayDeterministic: a flagged arena deal replays
// bit-for-bit from its population index — same seed, same spec, same
// outcome — and out-of-range indices are rejected.
func TestFleetArenaReplayDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("replay indices are baked for the full 60-deal population")
	}
	opts := arenaOpts(60, 4)
	for _, idx := range []int{0, 19, 20, 42, 59} {
		a, err := ReplayArenaDeal(opts, idx)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ReplayArenaDeal(opts, idx)
		if err != nil {
			t.Fatal(err)
		}
		fa := fmt.Sprintf("%d %d %s %v %s", a.Seed, a.Adversaries, a.Spec.ID, a.ArenaDelta, a.Result.Summary())
		fb := fmt.Sprintf("%d %d %s %v %s", b.Seed, b.Adversaries, b.Spec.ID, b.ArenaDelta, b.Result.Summary())
		if fa != fb {
			t.Fatalf("replay of arena deal %d not deterministic:\n%s\n---\n%s", idx, fa, fb)
		}
	}
	if _, err := ReplayArenaDeal(opts, 60); err == nil {
		t.Fatal("out-of-range replay index accepted")
	}
	if _, err := ReplayArenaDeal(Options{Deals: 10, Gen: GenOptions{Seed: 1}}, 0); err == nil {
		t.Fatal("arena replay without arena options accepted")
	}
}

// TestFleetSweepStreamsIdenticalToBatch: Sweep's streaming fold (chunked
// jobs, constant memory) produces byte-for-byte the report of the batch
// path (materialize all records, Aggregate) — the population is large
// enough to cross several chunk boundaries.
func TestFleetSweepStreamsIdenticalToBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a population large enough to cross several chunk boundaries")
	}
	opts := sweepOpts(150, 4)
	streamed, err := Sweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(opts.Gen)
	if err != nil {
		t.Fatal(err)
	}
	batch := Aggregate(RunJobs(gen.Jobs(150), 4))
	var a, b bytes.Buffer
	streamed.Fprint(&a)
	if err := streamed.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	batch.Fprint(&b)
	if err := batch.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("streamed and batch reports diverge:\n--- streamed ---\n%s\n--- batch ---\n%s", a.String(), b.String())
	}
}

// TestSketchConstantMemory: a million samples collapse into a bounded
// bucket set; count, min, max and mean stay exact and the percentile
// estimates stay within the sketch's 2% relative resolution.
func TestSketchConstantMemory(t *testing.T) {
	var s Sketch
	rng := sim.NewRNG(1)
	n := 1_000_000
	for i := 0; i < n; i++ {
		s.Add(float64(1 + rng.Intn(1_000_000)))
	}
	if len(s.buckets) > 1200 {
		t.Fatalf("sketch grew %d buckets over a 10^6 range; memory is not constant", len(s.buckets))
	}
	d := s.Dist()
	if d.Count != n {
		t.Fatalf("count = %d, want %d", d.Count, n)
	}
	if d.Min < 1 || d.Max > 1_000_000 {
		t.Fatalf("bounds wrong: %+v", d)
	}
	if d.Mean < 490_000 || d.Mean > 510_000 {
		t.Fatalf("mean %v far from uniform expectation", d.Mean)
	}
	for _, q := range []struct {
		got, want float64
	}{{d.P50, 500_000}, {d.P90, 900_000}, {d.P99, 990_000}} {
		if rel := q.got/q.want - 1; rel < -0.03 || rel > 0.03 {
			t.Fatalf("percentile %v deviates %v from %v", q.got, rel, q.want)
		}
	}
	// Zero and negative samples sort below every bucket.
	var z Sketch
	z.Add(0)
	z.Add(-5)
	z.Add(10)
	dz := z.Dist()
	if dz.P50 != 0 || dz.Min != -5 || dz.Max != 10 || dz.Count != 3 {
		t.Fatalf("non-positive handling wrong: %+v", dz)
	}
}

// TestReportReplayCommandRendered: when the caller supplies the replay
// command format, every flagged violation gets a ready-to-paste line.
func TestReportReplayCommandRendered(t *testing.T) {
	rep := Aggregate([]Record{
		{Index: 3, Seed: 11, SpecID: "ring-3/ring", Shape: ShapeRing, Protocol: "timelock",
			Sequenceable: true, Committed: true, SafetyViolations: []string{"party p: hurt"}},
	})
	rep.ReplayCommand = "dealsweep -seed 9 -deals 50 -replay %d"
	var buf bytes.Buffer
	rep.Fprint(&buf)
	want := "replay: dealsweep -seed 9 -deals 50 -replay 3"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("report missing %q:\n%s", want, buf.String())
	}
}
