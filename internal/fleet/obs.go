package fleet

import (
	"fmt"

	"xdeal/internal/engine"
	"xdeal/internal/obs"
	"xdeal/internal/sim"
)

// ObsOptions attaches the observability layer to a sweep. Every field
// is optional (nil disables that instrument), and all of it is
// strictly passive: a sweep's Report is byte-identical with ObsOptions
// set or not, on the same seed. Only the instruments' own outputs —
// the metrics snapshot, the flight-record JSONL, the stage timings —
// differ, and of those only the stage timings are machine-local.
type ObsOptions struct {
	// Metrics receives every world's (or arena substrate's) counters,
	// merged in index order. Merges are commutative, so the final
	// snapshot is identical for any worker count.
	Metrics *obs.Registry
	// Flight receives structured events: one per property violation or
	// errored run, with the offending deal's index and seed — the
	// evidence file a violation dump carries next to the replay seed.
	Flight *obs.Recorder
	// Stages accumulates wall-clock time per sweep stage (generate /
	// run / aggregate). Wall-clock readings never reach the report.
	Stages *obs.StageTimer
}

// metrics returns the registry, nil-safe on a nil ObsOptions.
func (ob *ObsOptions) metrics() *obs.Registry {
	if ob == nil {
		return nil
	}
	return ob.Metrics
}

// flight returns the recorder, nil-safe on a nil ObsOptions.
func (ob *ObsOptions) flight() *obs.Recorder {
	if ob == nil {
		return nil
	}
	return ob.Flight
}

// stages returns the stage timer, nil-safe on a nil ObsOptions.
func (ob *ObsOptions) stages() *obs.StageTimer {
	if ob == nil {
		return nil
	}
	return ob.Stages
}

// PhaseSpans is one deal's lifecycle timing, each span in Δ units of
// the deal's own delta: how long the deposits took to land (escrow),
// the transfers to clear (transfer), the validations to finish
// (validation), and the decision to land after that (decision), plus
// the whole start→decision interval (total). A phase whose milestone
// never completed is left zero and skipped by aggregation.
type PhaseSpans struct {
	Escrow     float64 `json:"escrow,omitempty"`
	Transfer   float64 `json:"transfer,omitempty"`
	Validation float64 `json:"validation,omitempty"`
	Decision   float64 `json:"decision,omitempty"`
	Total      float64 `json:"total,omitempty"`
}

// newPhaseSpans derives spans from the engine's phase milestones. Each
// span runs from the previous completed milestone (the deal start when
// none), so a skipped phase never inflates its successor.
func newPhaseSpans(p engine.PhaseTimes, delta sim.Duration) *PhaseSpans {
	if delta == 0 {
		return nil
	}
	d := float64(delta)
	var s PhaseSpans
	prev := p.Start
	span := func(end sim.Time) float64 {
		if end == 0 {
			return 0
		}
		v := float64(end-prev) / d
		prev = end
		return v
	}
	s.Escrow = span(p.EscrowEnd)
	s.Transfer = span(p.TransferEnd)
	s.Validation = span(p.ValidationEnd)
	s.Decision = span(p.DecisionEnd)
	if p.DecisionEnd != 0 {
		s.Total = float64(p.DecisionEnd-p.Start) / d
	}
	if s == (PhaseSpans{}) {
		return nil
	}
	return &s
}

// PhaseDist is one phase's latency distribution within a protocol.
type PhaseDist struct {
	Phase string `json:"phase"`
	Dist
}

// ProtocolPhases is one protocol's phase-latency table.
type ProtocolPhases struct {
	Protocol string      `json:"protocol"`
	Phases   []PhaseDist `json:"phases"`
}

// PhasesBlock localizes decision latency: per-protocol distributions
// (in Δ units) of each lifecycle phase, in fixed phase order. Like
// every report block it is a pure function of the folded records.
type PhasesBlock struct {
	Protocols []ProtocolPhases `json:"protocols"`
}

// phaseAgg folds one protocol's spans in constant memory.
type phaseAgg struct {
	escrow, transfer, validation, decision, total Sketch
}

func (p *phaseAgg) add(s *PhaseSpans) {
	if s.Escrow != 0 {
		p.escrow.Add(s.Escrow)
	}
	if s.Transfer != 0 {
		p.transfer.Add(s.Transfer)
	}
	if s.Validation != 0 {
		p.validation.Add(s.Validation)
	}
	if s.Decision != 0 {
		p.decision.Add(s.Decision)
	}
	if s.Total != 0 {
		p.total.Add(s.Total)
	}
}

// phases finalizes the protocol's table, skipping phases no deal
// completed.
func (p *phaseAgg) phases() []PhaseDist {
	var out []PhaseDist
	for _, ph := range []struct {
		name string
		s    *Sketch
	}{
		{"escrow", &p.escrow},
		{"transfer", &p.transfer},
		{"validation", &p.validation},
		{"decision", &p.decision},
		{"total", &p.total},
	} {
		if ph.s.count == 0 {
			continue
		}
		out = append(out, PhaseDist{Phase: ph.name, Dist: ph.s.Dist()})
	}
	return out
}

// recordFlight emits one deal's flight-recorder evidence: a deal event
// carrying its identity, then one event per violation or error (p3
// marks a strong-liveness Property 3 flag). Only flagged deals record,
// so a sweep's ring is violations end to end, not a sliding window of
// healthy runs.
func recordFlight(rec *obs.Recorder, r Record, p3 bool) {
	if rec == nil {
		return
	}
	flagged := len(r.SafetyViolations)+len(r.LivenessViolations) > 0 || p3 || r.Err != ""
	if !flagged {
		return
	}
	rec.Record(r.EndedAt, "fleet", "deal",
		fmt.Sprintf("index=%d seed=%d spec=%s shape=%s protocol=%s adversaries=%d committed=%t aborted=%t",
			r.Index, r.Seed, r.SpecID, r.Shape, r.Protocol, r.Adversaries, r.Committed, r.Aborted))
	for _, v := range r.SafetyViolations {
		rec.Record(r.EndedAt, "fleet", "violation",
			fmt.Sprintf("index=%d seed=%d property=safety(P1) %s", r.Index, r.Seed, v))
	}
	for _, v := range r.LivenessViolations {
		rec.Record(r.EndedAt, "fleet", "violation",
			fmt.Sprintf("index=%d seed=%d property=liveness(P2) %s", r.Index, r.Seed, v))
	}
	if p3 {
		rec.Record(r.EndedAt, "fleet", "violation",
			fmt.Sprintf("index=%d seed=%d property=strong-liveness(P3) all parties compliant yet the deal did not commit", r.Index, r.Seed))
	}
	if r.Err != "" {
		rec.Record(r.EndedAt, "fleet", "error",
			fmt.Sprintf("index=%d seed=%d %s", r.Index, r.Seed, r.Err))
	}
	recordFlightCrit(rec, r)
}
