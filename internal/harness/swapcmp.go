package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"xdeal/internal/chain"
	"xdeal/internal/deal"
	"xdeal/internal/engine"
	"xdeal/internal/gas"
	"xdeal/internal/htlc"
	"xdeal/internal/party"
	"xdeal/internal/sim"
	"xdeal/internal/token"
)

// htlcWorld wires chains, tokens and HTLC managers for a swap-shaped spec.
type htlcWorld struct {
	sched    *sim.Scheduler
	chains   map[chain.ID]*chain.Chain
	tokens   map[string]*token.Fungible
	managers map[string]chain.Addr
}

// buildHTLCWorld funds parties and deploys one HTLC contract per asset.
func buildHTLCWorld(spec *deal.Spec, seed uint64) *htlcWorld {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	w := &htlcWorld{
		sched:    sched,
		chains:   make(map[chain.ID]*chain.Chain),
		tokens:   make(map[string]*token.Fungible),
		managers: make(map[string]chain.Addr),
	}
	for _, a := range spec.Escrows() {
		c, ok := w.chains[a.Chain]
		if !ok {
			c = chain.New(chain.Config{
				ID: a.Chain, BlockInterval: 10,
				Delays:   chain.SyncPolicy{Min: 1, Max: 5},
				Schedule: gas.DefaultSchedule(),
			}, sched, rng)
			w.chains[a.Chain] = c
		}
		key := a.Key()
		addr := chain.Addr("htlc-" + string(a.Escrow))
		w.managers[key] = addr
		f := token.NewFungible(string(a.Token), "bank")
		w.tokens[key] = f
		c.MustDeploy(a.Token, f)
		c.MustDeploy(addr, htlc.New(a.Token, a.Kind))
	}
	// A rejected funding transaction would skew the whole gas
	// comparison; fail loudly, matching MustDeploy above.
	mustLand := func(r *chain.Receipt) {
		if r.Err != nil {
			panic(fmt.Sprintf("htlc world setup transaction %s.%s rejected: %v",
				r.Tx.Contract, r.Tx.Method, r.Err))
		}
	}
	for _, p := range spec.Parties {
		for _, ob := range spec.EscrowObligations(p) {
			key := ob.Asset.Key()
			c := w.chains[ob.Asset.Chain]
			c.Submit(&chain.Tx{Sender: "bank", Contract: ob.Asset.Token,
				Method: token.MethodMint, Label: engine.LabelSetup,
				Args:      token.MintArgs{To: p, Amount: ob.Amount},
				OnReceipt: mustLand})
			c.Submit(&chain.Tx{Sender: p, Contract: ob.Asset.Token,
				Method: token.MethodApprove, Label: engine.LabelSetup,
				Args:      token.ApproveArgs{Operator: w.managers[key], Allowed: true},
				OnReceipt: mustLand})
		}
	}
	sched.Run()
	return w
}

// RunSwapComparison settles the same n-party circular swap with the
// timelock deal protocol and with the HTLC baseline, reporting gas.
func RunSwapComparison(n int, seed uint64) (SwapComparisonRow, error) {
	row := SwapComparisonRow{N: n}

	// Deal protocol.
	spec := deal.RingSpec(n, sim.Time(3000+500*n), 1000)
	dealRow, err := RunGas(spec, engine.Options{Seed: seed, Protocol: party.ProtoTimelock})
	if err != nil {
		return row, err
	}
	row.DealSigVerifs = dealRow.CommitSigVerifs
	row.DealGas = dealRow.EscrowGas + dealRow.TransferGas + dealRow.CommitGas
	row.DealCommitted = dealRow.Committed

	// HTLC baseline on the same shape.
	spec = deal.RingSpec(n, 0, 0)
	if err := htlc.Supports(spec); err != nil {
		return row, err
	}
	row.HTLCSupported = true
	hw := buildHTLCWorld(spec, seed)
	swap, err := htlc.NewSwap(htlc.SwapConfig{
		Spec: spec, Chains: hw.chains, Managers: hw.managers,
		Sched: hw.sched, Delta: 1000,
	})
	if err != nil {
		return row, err
	}
	swap.Start()
	hw.sched.Run()
	row.HTLCCommitted = swap.Claims == len(spec.Transfers)
	merged := gas.NewMeter(gas.DefaultSchedule())
	for _, c := range hw.chains {
		merged.Merge(c.Meter())
	}
	row.HTLCSigVerifs = merged.Count(gas.OpSigVerify)
	row.HTLCGas = merged.UsedByLabel(party.LabelEscrow) + merged.UsedByLabel(party.LabelCommit) + merged.UsedByLabel(party.LabelAbort)

	// Expressiveness: HTLC must reject the broker deal.
	row.BrokerRejected = htlc.Supports(deal.BrokerSpec(1, 1)) != nil
	return row, nil
}

// SwapVsDeal renders the §8 comparison across swap sizes.
func SwapVsDeal(w io.Writer, ns []int, seed uint64) error {
	fmt.Fprintln(w, "§8 baseline: circular swap settled as a deal (timelock) vs HTLC")
	fmt.Fprintln(w)
	rows := make([]SwapComparisonRow, len(ns))
	if err := pool().Map(len(ns), func(i int) error {
		row, err := RunSwapComparison(ns[i], seed)
		rows[i] = row
		return err
	}); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tdeal sig.ver.\tdeal gas\thtlc sig.ver.\thtlc gas\tboth settle")
	for i, row := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%v\n",
			ns[i], row.DealSigVerifs, row.DealGas, row.HTLCSigVerifs, row.HTLCGas,
			row.DealCommitted && row.HTLCCommitted)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nHTLC claims verify hash preimages (no signatures); deals buy generality")
	fmt.Fprintln(w, "(brokers, auctions) that swaps cannot express — htlc.Supports rejects them.")
	return nil
}
