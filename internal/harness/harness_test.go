package harness

import (
	"bytes"
	"strings"
	"testing"

	"xdeal/internal/chain"
	"xdeal/internal/deal"
	"xdeal/internal/engine"
	"xdeal/internal/party"
	"xdeal/internal/sim"
)

func TestFig4ShapesMatchPaper(t *testing.T) {
	// Figure 4 row shapes on a dense deal: escrow and transfer writes
	// scale with m and t; timelock commit verifications scale like m·n²
	// while CBC's scale like m·(2f+1).
	n, m, f := 5, 4, 2
	spec := deal.DenseSpec(n, m, 6000, 1000)
	tl, err := RunGas(spec, engine.Options{Seed: 42, Protocol: party.ProtoTimelock})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := RunGas(spec, engine.Options{Seed: 42, Protocol: party.ProtoCBC, F: f})
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Committed || !cb.Committed {
		t.Fatalf("workload did not commit: timelock=%v cbc=%v", tl.Committed, cb.Committed)
	}

	// Escrow: 4 writes per escrowing party + 1 registration write per
	// (deal, contract) pair. DenseSpec has one escrowing party per
	// contract (the path head), so 5m writes total.
	wantEscrow := uint64(5 * m)
	if tl.EscrowWrites != wantEscrow || cb.EscrowWrites != wantEscrow {
		t.Fatalf("escrow writes = %d/%d, want %d (O(m))", tl.EscrowWrites, cb.EscrowWrites, wantEscrow)
	}

	// Transfer: 2 writes per tentative transfer, t = m(n-1) transfers.
	wantTransfer := uint64(2 * m * (n - 1))
	if tl.TransferWrites != wantTransfer || cb.TransferWrites != wantTransfer {
		t.Fatalf("transfer writes = %d/%d, want %d (O(t))", tl.TransferWrites, cb.TransferWrites, wantTransfer)
	}

	// Validation is free at the contracts.
	if tl.ValidationGas != 0 || cb.ValidationGas != 0 {
		t.Fatal("validation consumed gas; §7.1 says it is party-side only")
	}

	// Commit: timelock verifications are Θ(m·n²)-ish (each contract
	// collects n votes with multi-hop paths); they must strictly exceed
	// the linear bound m·n and stay within the worst case m·n².
	if tl.CommitSigVerifs <= uint64(m*n) {
		t.Fatalf("timelock commit verifications = %d, want > m·n = %d", tl.CommitSigVerifs, m*n)
	}
	if tl.CommitSigVerifs > uint64(m*n*n) {
		t.Fatalf("timelock commit verifications = %d exceed worst case m·n² = %d", tl.CommitSigVerifs, m*n*n)
	}
	// CBC: exactly one quorum check per contract.
	if cb.CommitSigVerifs != uint64(m*(2*f+1)) {
		t.Fatalf("cbc commit verifications = %d, want m(2f+1) = %d", cb.CommitSigVerifs, m*(2*f+1))
	}
}

func TestFig4TableRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(&buf, 4, 3, 1, 7); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "Timelock", "CBC", "sig.ver."} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestCommitGasCrossover(t *testing.T) {
	// §9: commit cost comparison. Timelock commit verifications grow
	// superlinearly with n; CBC's per-contract cost is constant. At
	// small n with a large committee the CBC is more expensive; as n
	// grows the timelock overtakes it.
	ns := []int{3, 6, 10}
	tl, cb, err := SweepCommitGasByN(ns, 4, 11) // 2f+1 = 9 validators
	if err != nil {
		t.Fatal(err)
	}
	for i := range ns {
		if !tl[i].Committed || !cb[i].Committed {
			t.Fatalf("n=%d did not commit", ns[i])
		}
	}
	// CBC per-contract constant: sig verifs = m(2f+1) exactly.
	for i, r := range cb {
		if r.CommitSigVerifs != uint64(r.M*9) {
			t.Fatalf("n=%d: cbc verifs = %d, want %d", ns[i], r.CommitSigVerifs, r.M*9)
		}
	}
	// Timelock grows faster than linear: per-contract verifications at
	// n=10 must exceed those at n=3 by more than the ratio of n.
	perContract := func(r GasRow) float64 { return float64(r.CommitSigVerifs) / float64(r.M) }
	lo, hi := perContract(tl[0]), perContract(tl[len(tl)-1])
	if hi/lo <= float64(ns[len(ns)-1])/float64(ns[0]) {
		t.Fatalf("timelock per-contract verifications grew %.2f→%.2f: not superlinear", lo, hi)
	}
	// Crossover: at n=3 the big-committee CBC is costlier per contract;
	// at n=10 the timelock is.
	if perContract(cb[0]) <= perContract(tl[0]) {
		t.Fatalf("at n=3: cbc %.1f ≤ timelock %.1f, expected CBC costlier", perContract(cb[0]), perContract(tl[0]))
	}
	if perContract(tl[len(tl)-1]) <= perContract(cb[len(cb)-1]) {
		t.Fatalf("at n=10: timelock %.1f ≤ cbc %.1f, expected timelock costlier",
			perContract(tl[len(tl)-1]), perContract(cb[len(cb)-1]))
	}
}

func TestSweepCommitGasByF(t *testing.T) {
	fs := []int{1, 2, 4, 7}
	rows, err := SweepCommitGasByF(4, fs, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		want := uint64(r.M * (2*fs[i] + 1))
		if r.CommitSigVerifs != want {
			t.Fatalf("f=%d: verifs = %d, want %d", fs[i], r.CommitSigVerifs, want)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	rows, err := Fig7Rows(6, 17)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]TimeRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if !r.Committed {
			t.Fatalf("%s run did not commit", r.Mode)
		}
		// Escrow completes within ~Δ (one submit+block+notify under
		// near-Δ/2 hop latency).
		if r.Escrow > 2.0 {
			t.Fatalf("%s: escrow took %.2fΔ, want ≤ ~Δ", r.Mode, r.Escrow)
		}
	}
	fw, al, cb := byMode["forwarded"], byMode["altruistic"], byMode["cbc"]
	// Forwarded timelock commit is O(n)Δ: votes hop around the ring.
	// Altruistic voting collapses it to ~Δ. CBC decides in O(1)Δ.
	if fw.Commit <= al.Commit {
		t.Fatalf("forwarded commit %.2fΔ not slower than altruistic %.2fΔ", fw.Commit, al.Commit)
	}
	if fw.Commit < 2 {
		t.Fatalf("forwarded commit %.2fΔ too fast for a 6-ring; forwarding not exercised", fw.Commit)
	}
	if al.Commit > 2.5 {
		t.Fatalf("altruistic commit %.2fΔ, want ~Δ", al.Commit)
	}
	if cb.Commit > 3.5 {
		t.Fatalf("cbc commit %.2fΔ, want O(1)Δ", cb.Commit)
	}
}

func TestFig7CommitGrowsWithN(t *testing.T) {
	// The O(n)Δ shape: forwarded-voting commit duration increases with
	// ring size.
	var commits []float64
	for _, n := range []int{3, 6, 9} {
		spec := deal.RingSpec(n, 40000, 1000)
		row, err := RunTime(spec, engine.Options{Seed: 19, Protocol: party.ProtoTimelock}, "forwarded")
		if err != nil {
			t.Fatal(err)
		}
		if !row.Committed {
			t.Fatalf("n=%d did not commit", n)
		}
		commits = append(commits, row.Commit)
	}
	if !(commits[0] < commits[1] && commits[1] < commits[2]) {
		t.Fatalf("commit durations %v not increasing with n", commits)
	}
}

func TestFig7TableRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7(&buf, 4, 23); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 7", "forwarded", "altruistic", "cbc"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestPoWAttackTableRenders(t *testing.T) {
	var buf bytes.Buffer
	PoWAttack(&buf, []float64{0.1, 0.3}, []int{0, 4}, 300, 3)
	out := buf.String()
	if !strings.Contains(out, "0.10") || !strings.Contains(out, "confirmations required") {
		t.Fatalf("pow table malformed:\n%s", out)
	}
}

func TestProofAblationShape(t *testing.T) {
	row, err := ProofAblation(2, 0, 29)
	if err != nil {
		t.Fatal(err)
	}
	if !row.CertCommitted || !row.BlockIsCommitted {
		t.Fatal("ablation runs did not commit")
	}
	// Status certificates: one quorum per contract (m=2 here). Block
	// proofs: at least a quorum per block per contract — strictly more
	// whenever the span has more than one block.
	if row.BlockSigVerifs <= row.CertSigVerifs {
		t.Fatalf("block proof verifs %d ≤ cert verifs %d; ablation shows no gap",
			row.BlockSigVerifs, row.CertSigVerifs)
	}
}

func TestProofAblationWithReconfigs(t *testing.T) {
	base, err := ProofAblation(1, 0, 31)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ProofAblation(1, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.CertCommitted {
		t.Fatal("reconfigured run did not commit")
	}
	// k reconfigurations add k quorum checks per contract.
	if rec.CertSigVerifs <= base.CertSigVerifs {
		t.Fatalf("reconfig verifs %d ≤ base %d; (k+1)(2f+1) scaling missing",
			rec.CertSigVerifs, base.CertSigVerifs)
	}
}

func TestAblationTableRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablation(&buf, []int{1, 2}, 37); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "proof ablation") {
		t.Fatalf("ablation table malformed:\n%s", buf.String())
	}
}

func TestSwapComparison(t *testing.T) {
	row, err := RunSwapComparison(4, 41)
	if err != nil {
		t.Fatal(err)
	}
	if !row.DealCommitted || !row.HTLCCommitted {
		t.Fatalf("settlements incomplete: deal=%v htlc=%v", row.DealCommitted, row.HTLCCommitted)
	}
	if !row.HTLCSupported || !row.BrokerRejected {
		t.Fatal("expressiveness checks failed")
	}
	if row.HTLCSigVerifs != 0 {
		t.Fatalf("htlc used %d signature verifications, want 0", row.HTLCSigVerifs)
	}
	if row.DealSigVerifs == 0 {
		t.Fatal("deal protocol used no signature verifications")
	}
}

func TestSwapVsDealTableRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := SwapVsDeal(&buf, []int{2, 3}, 43); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HTLC") {
		t.Fatalf("swap table malformed:\n%s", buf.String())
	}
}

func TestRunTimeHandlesAborts(t *testing.T) {
	// A deal that cannot complete still yields a row (phases zeroed past
	// the failure point) rather than wedging the harness.
	spec := deal.RingSpec(3, 40000, 1000)
	row, err := RunTime(spec, engine.Options{
		Seed: 47, Protocol: party.ProtoTimelock,
		Behaviors: map[chain.Addr]party.Behavior{"p00": {SkipEscrow: true}},
	}, "forwarded")
	if err != nil {
		t.Fatal(err)
	}
	if row.Committed {
		t.Fatal("impossible deal committed")
	}
	_ = sim.Time(0)
}

func TestTransferDepthDichotomy(t *testing.T) {
	// Figure 7: "transfer tΔ or Δ". Rings transfer concurrently (flat in
	// n); pass-through paths serialize (growing with n).
	rows, err := SweepTransferDepth([]int{3, 5, 7}, 53)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.RingCommitted || !r.PathCommitted {
			t.Fatalf("n=%d runs did not commit", r.N)
		}
		if r.ChainDepth != r.N-1 {
			t.Fatalf("n=%d path depth = %d, want n-1", r.N, r.ChainDepth)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.PathTransfer <= first.PathTransfer {
		t.Fatalf("sequential transfer did not grow: %.2f -> %.2f", first.PathTransfer, last.PathTransfer)
	}
	if last.RingTransfer > first.RingTransfer+1.0 {
		t.Fatalf("concurrent transfer grew with n: %.2f -> %.2f", first.RingTransfer, last.RingTransfer)
	}
	if last.PathTransfer <= last.RingTransfer {
		t.Fatalf("at n=%d sequential (%.2f) not slower than concurrent (%.2f)",
			last.N, last.PathTransfer, last.RingTransfer)
	}
	var buf bytes.Buffer
	FprintTransferDepth(&buf, rows)
	if !strings.Contains(buf.String(), "chain depth") {
		t.Fatal("render malformed")
	}
}

func TestWriteReportComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, 3, 300); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# xdeal experiment report",
		"Figure 4", "Figure 7",
		"PoW private-mining attack",
		"proof-format ablation",
		"HTLC baseline",
		"Transfer dichotomy",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestAbortPathTiming(t *testing.T) {
	// Figure 7's Abort column. Timelock: refunds land after t0+N·Δ, so
	// the abort path grows linearly with n (t0=2Δ here, so expect
	// ≈ (2+n)Δ). CBC: the giving-up party's patience dominates,
	// independent of n.
	var tl []AbortTimeRow
	for _, n := range []int{3, 5, 7} {
		row, err := RunAbortTime(n, party.ProtoTimelock, 0, 91)
		if err != nil {
			t.Fatal(err)
		}
		if !row.Aborted {
			t.Fatalf("timelock n=%d did not abort", n)
		}
		tl = append(tl, row)
	}
	for i, row := range tl {
		n := []int{3, 5, 7}[i]
		want := float64(2 + n) // t0 (2Δ) + N·Δ
		if row.AbortEnd < want || row.AbortEnd > want+1.5 {
			t.Fatalf("timelock n=%d abort at %.2fΔ, want ≈ %.1fΔ", n, row.AbortEnd, want)
		}
	}
	if !(tl[0].AbortEnd < tl[1].AbortEnd && tl[1].AbortEnd < tl[2].AbortEnd) {
		t.Fatal("timelock abort time not growing with n")
	}

	var cb []AbortTimeRow
	for _, n := range []int{3, 5, 7} {
		row, err := RunAbortTime(n, party.ProtoCBC, 4000, 91)
		if err != nil {
			t.Fatal(err)
		}
		if !row.Aborted {
			t.Fatalf("cbc n=%d did not abort", n)
		}
		cb = append(cb, row)
	}
	// All CBC aborts settle shortly after the 4Δ patience, flat in n.
	for _, row := range cb {
		if row.AbortEnd < 4 || row.AbortEnd > 6.5 {
			t.Fatalf("cbc n=%d abort at %.2fΔ, want just after the 4Δ patience", row.N, row.AbortEnd)
		}
	}
	spread := cb[2].AbortEnd - cb[0].AbortEnd
	if spread > 1.0 || spread < -1.0 {
		t.Fatalf("cbc abort time varies with n by %.2fΔ; should be per-party timeout", spread)
	}

	var buf bytes.Buffer
	FprintAbortTimes(&buf, append(tl, cb...))
	if !strings.Contains(buf.String(), "abort path") {
		t.Fatal("render malformed")
	}
}
