// Package harness runs the paper's experiments and renders their tables.
//
// The evaluation of "Cross-chain Deals and Adversarial Commerce" is an
// analytical cost model: Figure 4 (gas costs per phase for the timelock
// and CBC protocols) and Figure 7 (time costs in Δ units). The harness
// reproduces both by measuring executed protocols on the simulated
// multi-chain substrate, plus the §6.2 proof-of-work attack analysis, the
// certificate-vs-block-proof ablation, and the §8 comparison against the
// HTLC swap baseline.
package harness

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"xdeal/internal/chain"
	"xdeal/internal/deal"
	"xdeal/internal/engine"
	"xdeal/internal/fleet"
	"xdeal/internal/gas"
	"xdeal/internal/party"
	"xdeal/internal/pow"
	"xdeal/internal/sim"
)

// Workers bounds the worker pool the harness sweeps run on; 0 (the
// default) uses one worker per CPU. Each sweep point is an independent
// single-threaded world, so results are identical for any setting.
var Workers = 0

// pool returns the sweep worker pool.
func pool() fleet.Pool { return fleet.Pool{Workers: Workers} }

// GasRow is the measured per-phase gas profile of one protocol execution:
// one row of Figure 4.
type GasRow struct {
	Protocol string
	N, M, T  int // parties, escrow contracts, transfers
	F        int // CBC fault tolerance (0 for timelock)

	EscrowWrites    uint64
	TransferWrites  uint64
	CommitSigVerifs uint64
	CommitWrites    uint64
	ValidationGas   uint64 // always 0: validation is party-side (§7.1)

	EscrowGas   uint64
	TransferGas uint64
	CommitGas   uint64
	TotalGas    uint64

	Committed bool
}

// RunGas executes a deal and extracts its Figure 4 row.
func RunGas(spec *deal.Spec, opts engine.Options) (GasRow, error) {
	w, err := engine.Build(spec, opts)
	if err != nil {
		return GasRow{}, err
	}
	r := w.Run()
	m := r.Gas
	row := GasRow{
		Protocol: opts.Protocol.String(),
		N:        len(spec.Parties),
		M:        len(spec.Escrows()),
		T:        len(spec.Transfers),
		F:        opts.F,

		EscrowWrites:    m.CountByLabel(party.LabelEscrow, gas.OpWrite),
		TransferWrites:  m.CountByLabel(party.LabelTransfer, gas.OpWrite),
		CommitSigVerifs: m.CountByLabel(party.LabelCommit, gas.OpSigVerify),
		CommitWrites:    m.CountByLabel(party.LabelCommit, gas.OpWrite),

		EscrowGas:   m.UsedByLabel(party.LabelEscrow),
		TransferGas: m.UsedByLabel(party.LabelTransfer),
		CommitGas:   m.UsedByLabel(party.LabelCommit),
		TotalGas:    m.Used(),
		Committed:   r.AllCommitted,
	}
	if opts.Protocol == party.ProtoTimelock {
		row.F = 0
	}
	return row, nil
}

// Fig4 reproduces Figure 4: the per-phase gas cost table for both
// protocols on the same workload (an n-party deal over m escrow
// contracts). Expected shapes, from the paper:
//
//	Timelock: O(m) escrow writes, O(t) transfer writes, no validation
//	          gas, O(m·n²) commit signature verifications + O(m) writes.
//	CBC:      same escrow/transfer/validation, O(m·(2f+1)) commit
//	          signature verifications + O(m) writes.
func Fig4(w io.Writer, n, m, f int, seed uint64) error {
	spec := deal.DenseSpec(n, m, sim.Time(3000+500*n), 1000)

	tl, err := RunGas(spec, engine.Options{Seed: seed, Protocol: party.ProtoTimelock})
	if err != nil {
		return err
	}
	cb, err := RunGas(spec, engine.Options{Seed: seed, Protocol: party.ProtoCBC, F: f})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Figure 4: gas costs (n=%d parties, m=%d contracts, t=%d transfers, f=%d)\n\n",
		tl.N, tl.M, tl.T, f)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Protocol\tEscrow\tTransfer\tValidation\tCommit")
	fmt.Fprintf(tw, "Timelock\t%d writes\t%d writes\tnone\t%d sig.ver. + %d writes\n",
		tl.EscrowWrites, tl.TransferWrites, tl.CommitSigVerifs, tl.CommitWrites)
	fmt.Fprintf(tw, "CBC\t%d writes\t%d writes\tnone\t%d sig.ver. + %d writes\n",
		cb.EscrowWrites, cb.TransferWrites, cb.CommitSigVerifs, cb.CommitWrites)
	tw.Flush()
	fmt.Fprintf(w, "\npaper:   Timelock O(m) | O(t) | none | O(mn²) sig.ver. + O(m) writes\n")
	fmt.Fprintf(w, "paper:   CBC      O(m) | O(t) | none | O(m(2f+1)) sig.ver. + O(m) writes\n")
	fmt.Fprintf(w, "here:    m=%d, t=%d, n=%d ⇒ mn²=%d, m(2f+1)=%d\n",
		tl.M, tl.T, tl.N, tl.M*tl.N*tl.N, cb.M*(2*f+1))
	return nil
}

// SweepCommitGasByN measures commit-phase signature verifications as n
// grows (ring deals, m = n), for both protocols. The timelock curve grows
// quadratically per contract; the CBC curve stays flat at 2f+1 per
// contract — the crossover of §9 ("it will usually be more expensive to
// commit a CBC deal than a timelock deal" when 2f+1 > n²).
func SweepCommitGasByN(ns []int, f int, seed uint64) ([]GasRow, []GasRow, error) {
	tl := make([]GasRow, len(ns))
	cb := make([]GasRow, len(ns))
	// Each (n, protocol) point is an independent world: fan the 2·|ns|
	// runs out across the fleet pool.
	err := pool().Map(2*len(ns), func(i int) error {
		n := ns[i/2]
		spec := deal.RingSpec(n, sim.Time(3000+500*n), 1000)
		if i%2 == 0 {
			row, err := RunGas(spec, engine.Options{Seed: seed, Protocol: party.ProtoTimelock})
			tl[i/2] = row
			return err
		}
		row, err := RunGas(spec, engine.Options{Seed: seed, Protocol: party.ProtoCBC, F: f})
		cb[i/2] = row
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return tl, cb, nil
}

// SweepCommitGasByF measures CBC commit verifications as the committee
// grows at fixed n.
func SweepCommitGasByF(n int, fs []int, seed uint64) ([]GasRow, error) {
	out := make([]GasRow, len(fs))
	err := pool().Map(len(fs), func(i int) error {
		spec := deal.RingSpec(n, sim.Time(3000+500*n), 1000)
		row, err := RunGas(spec, engine.Options{Seed: seed, Protocol: party.ProtoCBC, F: fs[i]})
		out[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FprintSweep renders a sweep as a small series table.
func FprintSweep(w io.Writer, title, xName string, xs []int, rows []GasRow) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tm\tcommit sig.ver.\tsig.ver. per contract\tcommit gas\n", xName)
	for i, r := range rows {
		per := float64(r.CommitSigVerifs) / float64(r.M)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%d\n", xs[i], r.M, r.CommitSigVerifs, per, r.CommitGas)
	}
	tw.Flush()
}

// TimeRow is one row of Figure 7: per-phase completion times in Δ units.
type TimeRow struct {
	Protocol   string
	Mode       string // "forwarded" | "altruistic" | "cbc"
	N          int
	Escrow     float64
	Transfer   float64
	Validation float64
	Commit     float64 // decision completion, in Δ after validation end
	Total      float64
	Committed  bool
}

// RunTime executes a deal under near-Δ network latency so that each
// protocol hop costs a visible fraction of Δ, and reports phase durations
// in Δ units. The paper's Figure 7 bounds: escrow ≤ Δ, transfer ≤ t·Δ
// (or Δ concurrent), validation ≤ Δ, commit O(n)Δ for forwarded timelock
// voting, Δ for altruistic voting, O(1)Δ for the CBC.
func RunTime(spec *deal.Spec, opts engine.Options, mode string) (TimeRow, error) {
	delta := spec.Delta
	// Hop latency close to Δ/2 so per-hop costs register on the Δ scale.
	if opts.Delays == nil {
		opts.Delays = chain.SyncPolicy{Min: delta / 3, Max: delta / 2}
	}
	if opts.CBCDelays == nil {
		opts.CBCDelays = opts.Delays
	}
	if opts.BlockInterval <= 0 {
		opts.BlockInterval = delta / 10
	}
	w, err := engine.Build(spec, opts)
	if err != nil {
		return TimeRow{}, err
	}
	r := w.Run()
	ph := r.Phases
	row := TimeRow{
		Protocol:   opts.Protocol.String(),
		Mode:       mode,
		N:          len(spec.Parties),
		Escrow:     ph.InDelta(ph.EscrowEnd, delta),
		Transfer:   ph.InDelta(ph.TransferEnd, delta) - ph.InDelta(ph.EscrowEnd, delta),
		Validation: ph.InDelta(ph.ValidationEnd, delta) - ph.InDelta(ph.TransferEnd, delta),
		Commit:     ph.InDelta(ph.DecisionEnd, delta) - ph.InDelta(ph.ValidationEnd, delta),
		Total:      ph.InDelta(ph.DecisionEnd, delta),
		Committed:  r.AllCommitted,
	}
	if row.Transfer < 0 {
		row.Transfer = 0
	}
	if row.Validation < 0 {
		row.Validation = 0
	}
	return row, nil
}

// Fig7 reproduces Figure 7's delay table on an n-party ring: the timelock
// protocol with incentive-minimal (forwarded) voting, with altruistic
// direct voting, and the CBC protocol.
func Fig7(w io.Writer, n int, seed uint64) error {
	rows, err := Fig7Rows(n, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 7: delays in Δ units (n=%d ring, hop latency ≈ Δ/2)\n\n", n)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Protocol\tEscrow\tTransfer\tValidation\tCommit\tTotal")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s (%s)\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Protocol, r.Mode, r.Escrow, r.Transfer, r.Validation, r.Commit, r.Total)
	}
	tw.Flush()
	fmt.Fprintf(w, "\npaper: escrow Δ | transfer tΔ or Δ | validation Δ | commit O(n)Δ (timelock) vs O(1)Δ (CBC)\n")
	return nil
}

// Fig7Rows computes the three Figure 7 configurations, fanned out
// across the fleet pool.
func Fig7Rows(n int, seed uint64) ([]TimeRow, error) {
	t0 := sim.Time(40000)
	delta := sim.Duration(1000)
	rows := make([]TimeRow, 3)
	err := pool().Map(3, func(i int) error {
		spec := deal.RingSpec(n, t0, delta)
		var row TimeRow
		var err error
		switch i {
		case 0:
			row, err = RunTime(spec, engine.Options{Seed: seed, Protocol: party.ProtoTimelock}, "forwarded")
		case 1:
			behaviors := make(map[chain.Addr]party.Behavior)
			for _, p := range spec.Parties {
				behaviors[p] = party.Behavior{Altruistic: true}
			}
			row, err = RunTime(spec, engine.Options{
				Seed: seed, Protocol: party.ProtoTimelock, Behaviors: behaviors,
			}, "altruistic")
		case 2:
			row, err = RunTime(spec, engine.Options{
				Seed: seed, Protocol: party.ProtoCBC, F: 1, Patience: 200000,
			}, "cbc")
		}
		rows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PoWAttack reproduces the §6.2 analysis: the fake proof-of-abort attack
// success probability as a function of the adversary's hash power and the
// required confirmation depth, plus the confirmations needed to push the
// risk below thresholds (deeper for higher-value deals).
func PoWAttack(w io.Writer, alphas []float64, ks []int, trials int, seed uint64) {
	fmt.Fprintf(w, "§6.2 PoW private-mining attack: success probability (trials=%d, 3 vote blocks)\n\n", trials)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "α \\ k")
	for _, k := range ks {
		fmt.Fprintf(tw, "\t%d", k)
	}
	fmt.Fprintln(tw)
	for _, a := range alphas {
		fmt.Fprintf(tw, "%.2f", a)
		for _, k := range ks {
			p := pow.SuccessProbability(seed, pow.RaceParams{
				Alpha: a, VoteBlocks: 3, Confirmations: k,
			}, trials)
			fmt.Fprintf(tw, "\t%.3f", p)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Fprintf(w, "\nconfirmations required (α=0.30): ")
	var parts []string
	for _, risk := range []float64{0.10, 0.03, 0.01} {
		k, p := pow.RequiredConfirmations(seed, 0.30, 3, risk, trials, 64)
		parts = append(parts, fmt.Sprintf("risk≤%.2f → k=%d (est %.3f)", risk, k, p))
	}
	fmt.Fprintln(w, strings.Join(parts, ", "))
	fmt.Fprintln(w, "higher-value deals demand lower risk, hence more confirmations (paper §6.2)")
}

// AblationRow compares the two CBC proof formats at one committee size.
type AblationRow struct {
	F                int
	Reconfigs        int
	CertSigVerifs    uint64
	BlockSigVerifs   uint64
	CertCommitGas    uint64
	BlockCommitGas   uint64
	BlocksInSpan     int
	CertCommitted    bool
	BlockIsCommitted bool
}

// ProofAblation measures the §6.2 optimization: status certificates vs
// block-subsequence proofs, on the same broker deal.
func ProofAblation(f, reconfigs int, seed uint64) (AblationRow, error) {
	row := AblationRow{F: f, Reconfigs: reconfigs}

	spec := deal.BrokerSpec(2000, 1000)
	w, err := engine.Build(spec, engine.Options{
		Seed: seed, Protocol: party.ProtoCBC, F: f,
		ProofFormat: party.ProofStatus, Reconfigurations: reconfigs,
	})
	if err != nil {
		return row, err
	}
	r := w.Run()
	row.CertSigVerifs = r.Gas.CountByLabel(party.LabelCommit, gas.OpSigVerify)
	row.CertCommitGas = r.Gas.UsedByLabel(party.LabelCommit)
	row.CertCommitted = r.AllCommitted

	spec = deal.BrokerSpec(2000, 1000)
	w, err = engine.Build(spec, engine.Options{
		Seed: seed, Protocol: party.ProtoCBC, F: f,
		ProofFormat: party.ProofBlocks, Reconfigurations: reconfigs,
	})
	if err != nil {
		return row, err
	}
	r = w.Run()
	row.BlockSigVerifs = r.Gas.CountByLabel(party.LabelCommit, gas.OpSigVerify)
	row.BlockCommitGas = r.Gas.UsedByLabel(party.LabelCommit)
	row.BlockIsCommitted = r.AllCommitted
	row.BlocksInSpan = int(w.CBC.Height())
	return row, nil
}

// Ablation renders the proof-format comparison across committee sizes.
func Ablation(w io.Writer, fs []int, seed uint64) error {
	fmt.Fprintln(w, "§6.2 proof ablation: status certificate vs block-subsequence proof (broker deal)")
	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "f\tcert sig.ver.\tblock sig.ver.\tcert commit gas\tblock commit gas")
	for _, f := range fs {
		row, err := ProofAblation(f, 0, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n",
			f, row.CertSigVerifs, row.BlockSigVerifs, row.CertCommitGas, row.BlockCommitGas)
	}
	tw.Flush()
	fmt.Fprintln(w, "\ncertificates cost (k+1)(2f+1) verifications; block proofs cost a quorum per block")
	return nil
}

// SwapComparisonRow contrasts an n-party circular swap settled by the
// timelock deal protocol vs the HTLC baseline.
type SwapComparisonRow struct {
	N              int
	DealSigVerifs  uint64
	DealGas        uint64
	HTLCSigVerifs  uint64
	HTLCGas        uint64
	DealCommitted  bool
	HTLCCommitted  bool
	HTLCSupported  bool
	BrokerRejected bool // HTLC cannot express the broker deal
}

// TransferDepthRow captures Figure 7's transfer-phase dichotomy: t·Δ when
// transfers are sequential (pass-through chains) vs Δ when they can run
// concurrently (direct transfers).
type TransferDepthRow struct {
	N             int
	ChainDepth    int     // longest dependent-transfer chain in the spec
	RingTransfer  float64 // Δ units, all transfers independent
	PathTransfer  float64 // Δ units, transfers form a pass-through chain
	RingCommitted bool
	PathCommitted bool
}

// SweepTransferDepth measures transfer-phase duration on rings (depth 1)
// vs dense path deals (depth n−1) as n grows.
func SweepTransferDepth(ns []int, seed uint64) ([]TransferDepthRow, error) {
	out := make([]TransferDepthRow, len(ns))
	err := pool().Map(len(ns), func(i int) error {
		n := ns[i]
		ring := deal.RingSpec(n, 40000, 1000)
		ringRow, err := RunTime(ring, engine.Options{Seed: seed, Protocol: party.ProtoTimelock}, "ring")
		if err != nil {
			return err
		}
		path := deal.DenseSpec(n, 2, 40000, 1000)
		pathRow, err := RunTime(path, engine.Options{Seed: seed, Protocol: party.ProtoTimelock}, "path")
		if err != nil {
			return err
		}
		out[i] = TransferDepthRow{
			N:             n,
			ChainDepth:    path.MaxTransferChain(),
			RingTransfer:  ringRow.Transfer,
			PathTransfer:  pathRow.Transfer,
			RingCommitted: ringRow.Committed,
			PathCommitted: pathRow.Committed,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FprintTransferDepth renders the transfer-depth sweep.
func FprintTransferDepth(w io.Writer, rows []TransferDepthRow) {
	fmt.Fprintln(w, "transfer phase duration: concurrent (ring) vs sequential (pass-through path)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tchain depth\tring transfer (Δ)\tpath transfer (Δ)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\n", r.N, r.ChainDepth, r.RingTransfer, r.PathTransfer)
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: transfer takes tΔ sequentially, Δ when concurrent (Figure 7)")
}

// AbortTimeRow measures Figure 7's Abort column: how long until all
// compliant deposits are back after a deal fails.
type AbortTimeRow struct {
	Protocol string
	N        int
	// AbortEnd is when the last escrow finalized (refunds complete), in
	// Δ units from the start.
	AbortEnd float64
	Aborted  bool
}

// RunAbortTime runs a ring deal in which one party never votes, forcing
// the failure path: timelock escrows refund after t0+N·Δ (so the abort
// path costs O(n)Δ); CBC parties give up after their per-party patience
// and the abort settles one proof round later.
func RunAbortTime(n int, proto party.Protocol, patience sim.Duration, seed uint64) (AbortTimeRow, error) {
	spec := deal.RingSpec(n, 2000, 1000)
	opts := engine.Options{
		Seed:     seed,
		Protocol: proto,
		F:        1,
		Patience: patience,
		Behaviors: map[chain.Addr]party.Behavior{
			spec.Parties[0]: {SkipVoting: true},
		},
	}
	w, err := engine.Build(spec, opts)
	if err != nil {
		return AbortTimeRow{}, err
	}
	r := w.Run()
	return AbortTimeRow{
		Protocol: proto.String(),
		N:        n,
		AbortEnd: r.Phases.InDelta(r.Phases.DecisionEnd, spec.Delta),
		Aborted:  r.AllAborted,
	}, nil
}

// FprintAbortTimes renders the abort-path sweep.
func FprintAbortTimes(w io.Writer, rows []AbortTimeRow) {
	fmt.Fprintln(w, "abort path duration (one party never votes)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "protocol\tn\tabort complete (Δ)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\n", r.Protocol, r.N, r.AbortEnd)
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: timelock abort O(n)Δ (refund at t0+NΔ); CBC abort after a per-party timeout")
}
