package harness

import (
	"fmt"
	"io"

	"xdeal/internal/party"
)

// WriteReport regenerates the full experiment report by running every
// experiment at the given seed: Figure 4 with its sweeps, Figure 7 with
// the commit- and transfer-scaling series, the PoW attack analysis, the
// proof-format ablation, and the HTLC baseline comparison. cmd/benchtab
// uses it for the `report` subcommand; EXPERIMENTS.md is its curated
// twin.
func WriteReport(w io.Writer, seed uint64, trials int) error {
	fmt.Fprintln(w, "# xdeal experiment report")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Deterministic run at seed %d. Regenerate: `go run ./cmd/benchtab report`.\n", seed)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Figure 4 — gas costs")
	fmt.Fprintln(w)
	if err := Fig4(w, 6, 4, 2, seed); err != nil {
		return err
	}
	fmt.Fprintln(w)

	ns := []int{3, 4, 6, 8, 10}
	tl, cb, err := SweepCommitGasByN(ns, 2, seed)
	if err != nil {
		return err
	}
	FprintSweep(w, "### Commit gas vs n — timelock (rings, m=n)", "n", ns, tl)
	fmt.Fprintln(w)
	FprintSweep(w, "### Commit gas vs n — CBC (f=2)", "n", ns, cb)
	fmt.Fprintln(w)

	fs := []int{1, 2, 4, 7, 10}
	fsRows, err := SweepCommitGasByF(6, fs, seed)
	if err != nil {
		return err
	}
	FprintSweep(w, "### Commit gas vs f — CBC (n=6)", "f", fs, fsRows)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## Figure 7 — delays")
	fmt.Fprintln(w)
	if err := Fig7(w, 6, seed); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "### Commit duration vs n (Δ units)")
	for _, n := range []int{3, 5, 7, 9} {
		rows, err := Fig7Rows(n, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  n=%d: forwarded=%.2f altruistic=%.2f cbc=%.2f\n",
			n, rows[0].Commit, rows[1].Commit, rows[2].Commit)
	}
	fmt.Fprintln(w)

	depth, err := SweepTransferDepth([]int{3, 5, 7}, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "### Transfer dichotomy (tΔ sequential vs Δ concurrent)")
	FprintTransferDepth(w, depth)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "### Abort path (Figure 7's Abort column)")
	var aborts []AbortTimeRow
	for _, n := range []int{3, 5, 7} {
		tl, err := RunAbortTime(n, party.ProtoTimelock, 0, seed)
		if err != nil {
			return err
		}
		cb, err := RunAbortTime(n, party.ProtoCBC, 4000, seed)
		if err != nil {
			return err
		}
		aborts = append(aborts, tl, cb)
	}
	FprintAbortTimes(w, aborts)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## §6.2 — PoW private-mining attack")
	fmt.Fprintln(w)
	PoWAttack(w, []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.45},
		[]int{0, 1, 2, 4, 8, 16}, trials, seed)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## §6.2 — proof-format ablation")
	fmt.Fprintln(w)
	if err := Ablation(w, []int{1, 2, 4, 7}, seed); err != nil {
		return err
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "## §8 — HTLC baseline")
	fmt.Fprintln(w)
	return SwapVsDeal(w, []int{2, 3, 4, 6, 8}, seed)
}
