package feemarket

import (
	"xdeal/internal/obs"
)

// RegisterMetrics folds the market's lifetime ledger into a registry:
// fee-bearing blocks sealed, units burned and tipped, and the final
// base fee (gauge max across merged markets). Purely derived from
// state already accumulated — registering never perturbs the market.
func (m *Market) RegisterMetrics(reg *obs.Registry) {
	if reg == nil || m == nil {
		return
	}
	reg.Counter("feemarket.blocks_sealed").Add(uint64(m.sealed))
	reg.Counter("feemarket.burned").Add(m.total.Burned)
	reg.Counter("feemarket.tipped").Add(m.total.Tipped)
	reg.Gauge("feemarket.base_fee").Set(int64(m.baseFee))
}
