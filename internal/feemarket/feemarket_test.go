package feemarket

import "testing"

func TestDefaultsDeriveTargetFromCapacity(t *testing.T) {
	m := New(Config{}, 8)
	if got := m.Config().Target; got != 4 {
		t.Fatalf("target = %d, want half the block cap (4)", got)
	}
	if m.BaseFee() != 100 {
		t.Fatalf("initial base fee = %d, want 100", m.BaseFee())
	}
	uncapped := New(Config{}, 0)
	if got := uncapped.Config().Target; got != 4 {
		t.Fatalf("uncapped target = %d, want default 4", got)
	}
	tiny := New(Config{}, 1)
	if got := tiny.Config().Target; got != 1 {
		t.Fatalf("cap-1 target = %d, want 1 (never below one tx)", got)
	}
}

func TestBaseFeeRisesWithFullBlocksAndDecaysWhenIdle(t *testing.T) {
	m := New(Config{Initial: 100}, 8) // target 4
	start := m.BaseFee()
	for i := 0; i < 10; i++ {
		m.Seal(8) // consistently full blocks
	}
	high := m.BaseFee()
	if high <= start {
		t.Fatalf("base fee %d did not rise over %d under full blocks", high, start)
	}
	for i := 0; i < 200; i++ {
		m.Seal(0) // idle chain
	}
	if m.BaseFee() != 1 {
		t.Fatalf("base fee %d did not decay to the floor", m.BaseFee())
	}
	m.Seal(0)
	if m.BaseFee() != 1 {
		t.Fatal("base fee fell through the floor")
	}
	m.Seal(4) // exactly on target: no move
	if m.BaseFee() != 1 {
		t.Fatalf("on-target block moved the base fee to %d", m.BaseFee())
	}
}

func TestBaseFeeMoveBounded(t *testing.T) {
	m := New(Config{Initial: 800, AdjustQuotient: 8}, 8) // target 4
	m.Seal(8)                                            // 100% over target -> +1/8
	if got := m.BaseFee(); got != 900 {
		t.Fatalf("base fee after one full block = %d, want 900 (+12.5%%)", got)
	}
	m.Seal(0) // 100% under target -> -1/8
	if got := m.BaseFee(); got != 900-112 {
		t.Fatalf("base fee after one empty block = %d, want 788", got)
	}
}

func TestChargeAttributesByLabel(t *testing.T) {
	m := New(Config{Initial: 50}, 8)
	m.Charge("d0/escrow", 7)
	m.Charge("d0/commit", 3)
	m.Charge("d1/escrow", 0)
	tot := m.Totals()
	if tot.Burned != 150 || tot.Tipped != 10 {
		t.Fatalf("totals = %+v, want burned 150 tipped 10", tot)
	}
	if got := m.LabelTotals("d0/escrow"); got.Burned != 50 || got.Tipped != 7 {
		t.Fatalf("label totals = %+v", got)
	}
	if got := m.PrefixTotals("d0/"); got.Burned != 100 || got.Tipped != 10 {
		t.Fatalf("prefix totals = %+v, want burned 100 tipped 10", got)
	}
	if got := m.PrefixTotals("d1/"); got.Sum() != 50 {
		t.Fatalf("d1 prefix sum = %d, want 50", got.Sum())
	}
	if got := m.PrefixTotals("nope/"); got.Sum() != 0 {
		t.Fatalf("unknown prefix sum = %d, want 0", got.Sum())
	}
}

// TestMarketTrajectoryDeterministic: two markets driven by the same
// block sequence agree bit for bit at every step.
func TestMarketTrajectoryDeterministic(t *testing.T) {
	a := New(Config{Initial: 100}, 6)
	b := New(Config{Initial: 100}, 6)
	seq := []int{6, 6, 0, 3, 6, 1, 0, 0, 6, 6, 6, 2}
	for i, n := range seq {
		a.Charge("x", uint64(i))
		b.Charge("x", uint64(i))
		a.Seal(n)
		b.Seal(n)
		if a.BaseFee() != b.BaseFee() {
			t.Fatalf("step %d: base fees diverge (%d vs %d)", i, a.BaseFee(), b.BaseFee())
		}
	}
	if a.Totals() != b.Totals() {
		t.Fatalf("ledgers diverge: %+v vs %+v", a.Totals(), b.Totals())
	}
}
