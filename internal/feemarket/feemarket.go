// Package feemarket implements a deterministic per-chain fee market in
// the style of EIP-1559: a protocol-set base fee that rises when blocks
// run over a fullness target and decays when they run under it, plus
// per-transaction priority tips that block builders order by.
//
// The market splits a transaction's fee into two flows, mirroring the
// EIP-1559 accounting:
//
//   - the base fee is burned: every included transaction pays the base
//     fee current at its inclusion block, and congestion (full blocks)
//     ratchets that price up for everyone;
//   - the tip is the sender's bid for position: the block builder orders
//     the mempool by tip, descending, tie-broken by arrival sequence so
//     equal bids preserve FIFO and the whole simulation stays a pure
//     function of its seed.
//
// Fees are accounting, not token transfers: parties' on-chain balances
// are deal assets whose conservation the engine's safety checks assert,
// so fee spend is tracked in the market's own ledger (total and
// per-label, the same attribution scheme the gas meter uses) rather
// than debited from token contracts. This is exactly what the ordering
// games need — who got in first, and what the queue position cost —
// without entangling fee flows in Property 1–3 bookkeeping.
//
// Everything here is integer arithmetic on explicitly ordered state, so
// a market's trajectory is bit-identical across runs, worker counts,
// and platforms.
package feemarket

import (
	"math/bits"
	"sort"
)

// Config parameterizes a chain's fee market.
type Config struct {
	// Initial is the base fee of the first block (default 100).
	Initial uint64
	// Min is the floor the base fee decays toward (default 1).
	Min uint64
	// Target is the block fullness (in transactions) the base fee
	// steers toward: fuller blocks raise it, emptier blocks lower it.
	// Zero derives half the chain's block capacity, or 4 on chains
	// without a capacity cap.
	Target int
	// AdjustQuotient bounds the per-block base-fee move to 1/quotient
	// of the current fee, as in EIP-1559 (default 8, i.e. ±12.5%).
	AdjustQuotient uint64
}

// withDefaults resolves zero fields against the chain's block capacity.
func (c Config) withDefaults(maxBlockTxs int) Config {
	if c.Initial == 0 {
		c.Initial = 100
	}
	if c.Min == 0 {
		c.Min = 1
	}
	if c.Target <= 0 {
		if maxBlockTxs > 0 {
			c.Target = maxBlockTxs / 2
		} else {
			c.Target = 4
		}
		if c.Target < 1 {
			c.Target = 1
		}
	}
	if c.AdjustQuotient == 0 {
		c.AdjustQuotient = 8
	}
	return c
}

// Totals is a burned/tipped fee pair.
type Totals struct {
	Burned uint64 `json:"burned"`
	Tipped uint64 `json:"tipped"`
}

// Add folds another pair in.
func (t *Totals) Add(o Totals) {
	t.Burned += o.Burned
	t.Tipped += o.Tipped
}

// Sum returns burned + tipped.
func (t Totals) Sum() uint64 { return t.Burned + t.Tipped }

// maxHistory bounds the per-block base-fee history the market retains:
// enough for any realistic volatility window while keeping the market
// constant-memory over arbitrarily long simulations.
const maxHistory = 512

// Market is one chain's fee market state: the current base fee and the
// fee ledger. It is driven by the chain's block builder — Charge once
// per included transaction, then Seal once per block — and is not safe
// for concurrent use (the simulation is single-threaded).
type Market struct {
	cfg     Config
	baseFee uint64
	total   Totals
	byLabel map[string]*Totals
	// history is a ring of the base fees charged by the last sealed
	// blocks (oldest evicted first): the chain's realized congestion
	// trajectory, which hedging premiums are priced from. Once full,
	// head indexes the oldest entry and writes wrap in place, so
	// recording stays O(1) in the block-production hot path.
	history []uint64
	head    int
	sealed  int // total blocks sealed (history may have evicted some)
}

// New creates a market. maxBlockTxs is the hosting chain's block
// capacity, used to derive the default fullness target.
func New(cfg Config, maxBlockTxs int) *Market {
	cfg = cfg.withDefaults(maxBlockTxs)
	return &Market{
		cfg:     cfg,
		baseFee: cfg.Initial,
		byLabel: make(map[string]*Totals),
	}
}

// BaseFee returns the base fee the next block's transactions will burn.
func (m *Market) BaseFee() uint64 { return m.baseFee }

// Config returns the resolved configuration.
func (m *Market) Config() Config { return m.cfg }

// Charge records one included transaction: it burns the current base
// fee and pays its tip, attributed to the transaction's label (the same
// per-deal labels the gas meter uses). Failed transactions pay like
// successful ones — they occupied block space.
func (m *Market) Charge(label string, tip uint64) {
	t := m.byLabel[label]
	if t == nil {
		t = &Totals{}
		m.byLabel[label] = t
	}
	t.Burned += m.baseFee
	t.Tipped += tip
	m.total.Burned += m.baseFee
	m.total.Tipped += tip
}

// Seal closes a block of `included` transactions and moves the base fee
// for the next one: up when the block ran over target, down toward Min
// when under, each move bounded by baseFee/AdjustQuotient and at least
// 1 so the fee always reacts to sustained pressure. The cap binds even
// when a block overshoots twice the target (possible on chains whose
// capacity exceeds 2×Target, or with no capacity cap at all), so the
// ±1/quotient bound holds for every fullness sequence.
func (m *Market) Seal(included int) {
	m.record(m.baseFee)
	target := m.cfg.Target
	switch {
	case included > target:
		delta := m.delta(uint64(included - target))
		if m.baseFee > ^uint64(0)-delta {
			m.baseFee = ^uint64(0) // saturate instead of wrapping
		} else {
			m.baseFee += delta
		}
	case included < target:
		delta := m.delta(uint64(target - included))
		if m.baseFee <= m.cfg.Min+delta {
			m.baseFee = m.cfg.Min
		} else {
			m.baseFee -= delta
		}
	}
}

// delta sizes one base-fee move for an `excess` transactions deviation
// from target: baseFee·excess/target/quotient, clamped to
// [1, max(1, baseFee/quotient)]. The product goes through a 128-bit
// intermediate so a fee near the top of the uint64 range cannot wrap
// (the fuzzer found exactly that: a small quotient lets the fee climb
// until baseFee·excess overflows and the "rise" collapses the fee).
func (m *Market) delta(excess uint64) uint64 {
	target := uint64(m.cfg.Target)
	limit := m.baseFee / m.cfg.AdjustQuotient
	var delta uint64
	if excess >= target {
		// baseFee·excess/target ≥ baseFee, so the clamp binds exactly.
		delta = limit
	} else {
		hi, lo := bits.Mul64(m.baseFee, excess)
		div := target * m.cfg.AdjustQuotient
		if div/m.cfg.AdjustQuotient != target || hi >= div {
			delta = limit // divisor overflow, or quotient past 2^64
		} else {
			delta, _ = bits.Div64(hi, lo, div)
		}
	}
	if delta > limit {
		delta = limit
	}
	if delta < 1 {
		delta = 1
	}
	return delta
}

// record appends one sealed block's base fee to the bounded history,
// overwriting the oldest entry once the ring is full.
func (m *Market) record(fee uint64) {
	m.sealed++
	if len(m.history) < maxHistory {
		m.history = append(m.history, fee)
		return
	}
	m.history[m.head] = fee
	m.head = (m.head + 1) % maxHistory
}

// at returns the i-th retained base fee, oldest first.
func (m *Market) at(i int) uint64 {
	return m.history[(m.head+i)%len(m.history)]
}

// History returns the base fees charged by the last sealed blocks
// (oldest first, bounded at maxHistory entries).
func (m *Market) History() []uint64 {
	out := make([]uint64, 0, len(m.history))
	out = append(out, m.history[m.head:]...)
	out = append(out, m.history[:m.head]...)
	return out
}

// Blocks returns how many blocks the market has sealed in total.
func (m *Market) Blocks() int { return m.sealed }

// Volatility is the chain's realized base-fee volatility: the mean
// absolute fractional per-block base-fee move over the last `window`
// block transitions (fewer when the history is shorter). This is the
// deterministic congestion signal hedging premiums are priced from — a
// chain whose base fee is churning is a chain where timelocked capital
// is exposed, so insuring deposits on it costs more. Returns 0 with
// fewer than two sealed blocks. Each per-block fractional move is
// bounded by max(1/AdjustQuotient, 1/fee) — the quotient bound, except
// next to the floor where the minimum one-unit move dominates — so the
// result lies in [0, 1].
func (m *Market) Volatility(window int) float64 {
	n := len(m.history)
	if window <= 0 || n < 2 {
		return 0
	}
	lo := n - 1 - window
	if lo < 0 {
		lo = 0
	}
	var sum float64
	steps := 0
	for i := lo; i < n-1; i++ {
		prev, next := m.at(i), m.at(i+1)
		if prev == 0 {
			continue
		}
		move := float64(next) - float64(prev)
		if move < 0 {
			move = -move
		}
		sum += move / float64(prev)
		steps++
	}
	if steps == 0 {
		return 0
	}
	return sum / float64(steps)
}

// Totals returns the market-wide fee ledger.
func (m *Market) Totals() Totals { return m.total }

// LabelTotals returns the fees attributed to one exact label.
func (m *Market) LabelTotals(label string) Totals {
	if t := m.byLabel[label]; t != nil {
		return *t
	}
	return Totals{}
}

// PrefixTotals sums the fees of every label sharing a prefix — how
// engine.DealFees attributes fees per deal on substrates shared by many
// deals, whose labels are "dealID/phase". Iteration is over sorted
// labels, so the fold order (and any float consumer downstream) is
// deterministic.
func (m *Market) PrefixTotals(prefix string) Totals {
	labels := make([]string, 0, len(m.byLabel))
	for l := range m.byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var out Totals
	for _, l := range labels {
		if len(l) >= len(prefix) && l[:len(prefix)] == prefix {
			out.Add(*m.byLabel[l])
		}
	}
	return out
}
