package feemarket

import (
	"testing"
)

// This file hardens the determinism guarantees the rest of the repo
// rests on with property/fuzz coverage of the fee market:
//
//   1. the base fee never moves by more than max(1, baseFee/quotient)
//      per block — the EIP-1559 ±1/8 bound — for *arbitrary* fullness
//      sequences, including blocks that overshoot twice the target;
//   2. the base fee never falls below the configured floor;
//   3. burned + tipped always equals the sum of per-inclusion charges,
//      and the per-label ledger partitions the total exactly.
//
// The fuzz targets carry a committed seed corpus (f.Add below plus
// testdata/fuzz), and TestBaseFeeInvariantTable replays the same
// invariant checks over fixed adversarial sequences so plain `go test`
// (the CI path) exercises them deterministically without -fuzz.

// checkSealStep drives one Seal and asserts the move invariants.
// Returns the new base fee.
func checkSealStep(t *testing.T, m *Market, included int) uint64 {
	t.Helper()
	before := m.BaseFee()
	m.Seal(included)
	after := m.BaseFee()
	quot := m.Config().AdjustQuotient
	bound := before / quot
	if bound < 1 {
		bound = 1
	}
	var move uint64
	if after > before {
		move = after - before
	} else {
		move = before - after
	}
	// A decay that lands on the floor may be smaller than its computed
	// delta, never larger; the bound still applies.
	if move > bound {
		t.Fatalf("base fee moved %d -> %d (|Δ|=%d) past the ±max(1, fee/%d)=%d bound at fullness %d",
			before, after, move, quot, bound, included)
	}
	if after < m.Config().Min {
		t.Fatalf("base fee %d fell below the floor %d", after, m.Config().Min)
	}
	if included == m.Config().Target && after != before {
		t.Fatalf("on-target block moved the base fee %d -> %d", before, after)
	}
	return after
}

// driveMarket replays a fullness/tip script against a fresh market,
// asserting the move bound, the floor, and exact fee conservation.
func driveMarket(t *testing.T, cfg Config, maxBlockTxs int, script []byte) {
	t.Helper()
	m := New(cfg, maxBlockTxs)
	labels := []string{"d0/escrow", "d0/commit", "d1/escrow", "d2/abort"}
	var wantBurned, wantTipped uint64
	perLabel := make(map[string]Totals)
	for i, b := range script {
		// Byte i encodes one block: low nibble is the fullness (may
		// exceed 2×target — the overshoot case), high nibble drives the
		// tips and label choice of the block's inclusions.
		included := int(b & 0x0f)
		for j := 0; j < included; j++ {
			label := labels[(int(b>>4)+j)%len(labels)]
			tip := uint64(b>>4) + uint64(j%3)
			// Conservation oracle: every inclusion charges exactly the
			// current base fee plus its tip.
			wantBurned += m.BaseFee()
			wantTipped += tip
			lt := perLabel[label]
			lt.Burned += m.BaseFee()
			lt.Tipped += tip
			perLabel[label] = lt
			m.Charge(label, tip)
		}
		checkSealStep(t, m, included)
		if i > 64 && m.BaseFee() == m.Config().Min && included == 0 {
			// Long idle tails add no new information.
			break
		}
	}
	got := m.Totals()
	if got.Burned != wantBurned || got.Tipped != wantTipped {
		t.Fatalf("ledger totals %+v, want burned %d tipped %d (burned+tipped must equal charged)",
			got, wantBurned, wantTipped)
	}
	var labelSum Totals
	for l, want := range perLabel {
		lt := m.LabelTotals(l)
		if lt != want {
			t.Fatalf("label %s totals %+v, want %+v", l, lt, want)
		}
		labelSum.Add(lt)
	}
	if labelSum != got {
		t.Fatalf("per-label ledger %+v does not partition the total %+v", labelSum, got)
	}
	if n := len(m.History()); n > maxHistory {
		t.Fatalf("history grew to %d entries past the %d bound", n, maxHistory)
	}
	// Each fractional move is bounded by max(1/quotient, 1/fee) ≤ 1
	// (the one-unit minimum move dominates next to the floor), so the
	// realized mean can never leave [0, 1].
	if v := m.Volatility(32); v < 0 || v > 1 {
		t.Fatalf("realized volatility %v outside [0, 1]", v)
	}
}

// fuzzConfig decodes the fuzzed market parameters into a valid Config.
func fuzzConfig(initial, min uint64, target uint8, quot uint8) (Config, int) {
	cfg := Config{
		Initial:        initial%100000 + 1,
		Min:            min%100 + 1,
		Target:         int(target % 12), // 0 derives from capacity
		AdjustQuotient: uint64(quot%16) + 1,
	}
	if cfg.Initial < cfg.Min {
		cfg.Initial = cfg.Min
	}
	maxBlockTxs := int(target%3) * 8 // 0 (uncapped), 8, or 16
	return cfg, maxBlockTxs
}

// FuzzBaseFeeInvariants fuzzes arbitrary (config, fullness script)
// pairs through the market. The script's fullness nibbles run up to 15
// while targets run as low as 1, so overshoot far past 2×target — where
// the unclamped EIP-1559 formula would move more than fee/quotient — is
// squarely inside the searched space.
func FuzzBaseFeeInvariants(f *testing.F) {
	f.Add(uint64(100), uint64(1), uint8(0), uint8(7), []byte{0x18, 0x28, 0x00, 0xf4, 0x31})
	f.Add(uint64(800), uint64(1), uint8(4), uint8(7), []byte{0xff, 0xff, 0x00, 0x00, 0x0f, 0xf0})
	f.Add(uint64(7), uint64(3), uint8(1), uint8(7), []byte{0x0f, 0x0f, 0x0f, 0x00})
	f.Add(uint64(1), uint64(1), uint8(2), uint8(0), []byte{0x01, 0x10, 0x11})
	f.Add(uint64(99999), uint64(50), uint8(11), uint8(15), []byte{0xaf, 0x05, 0x50, 0xfa})
	f.Fuzz(func(t *testing.T, initial, min uint64, target, quot uint8, script []byte) {
		if len(script) > 4096 {
			script = script[:4096]
		}
		cfg, maxBlockTxs := fuzzConfig(initial, min, target, quot)
		driveMarket(t, cfg, maxBlockTxs, script)
	})
}

// TestBaseFeeInvariantTable is the deterministic CI fallback: the same
// invariants over fixed adversarial scripts, no -fuzz flag needed.
func TestBaseFeeInvariantTable(t *testing.T) {
	cases := []struct {
		name        string
		cfg         Config
		maxBlockTxs int
		script      []byte
	}{
		{"defaults-capped", Config{}, 8, []byte{0x18, 0x28, 0x38, 0x00, 0x11, 0xf8, 0x00, 0x48}},
		{"overshoot-small-target", Config{Target: 1}, 0, []byte{0x0f, 0x1f, 0x2f, 0x0f, 0x00, 0x0f}},
		{"uncapped-default-target", Config{}, 0, []byte{0x0f, 0x0f, 0x0f, 0x0f, 0x00, 0x00, 0x0f}},
		{"tiny-fee-floor", Config{Initial: 2, Min: 1}, 8, []byte{0x00, 0x00, 0x00, 0x18, 0x00, 0x00}},
		{"high-floor-decay", Config{Initial: 500, Min: 400}, 8, []byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}},
		{"quotient-1", Config{AdjustQuotient: 1}, 8, []byte{0x1f, 0x00, 0x2f, 0x00}},
		{"sawtooth", Config{Initial: 1000}, 16, []byte{0x1f, 0x00, 0x1f, 0x00, 0x1f, 0x00, 0x1f, 0x00}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			driveMarket(t, tc.cfg, tc.maxBlockTxs, tc.script)
		})
	}
}

// TestVolatilityKnownTrajectory pins the realized-volatility computation
// to a hand-computed trajectory, including window clamping.
func TestVolatilityKnownTrajectory(t *testing.T) {
	m := New(Config{Initial: 800, AdjustQuotient: 8}, 8) // target 4
	if v := m.Volatility(8); v != 0 {
		t.Fatalf("volatility with no sealed blocks = %v, want 0", v)
	}
	m.Seal(8) // history [800], fee 900
	if v := m.Volatility(8); v != 0 {
		t.Fatalf("volatility with one sealed block = %v, want 0", v)
	}
	m.Seal(8) // history [800 900], fee 1012
	// One transition: |900-800|/800 = 0.125.
	if v := m.Volatility(8); v != 0.125 {
		t.Fatalf("volatility = %v, want 0.125", v)
	}
	m.Seal(4) // on target: history [800 900 1012], fee stays 1012
	m.Seal(4) // history [800 900 1012 1012]
	// Window 1 sees only the flat transition.
	if v := m.Volatility(1); v != 0 {
		t.Fatalf("window-1 volatility = %v, want 0", v)
	}
	// Window 100 >> history: mean of (0.125, 1012/900-1, 0).
	want := (0.125 + float64(1012-900)/900 + 0) / 3
	if v := m.Volatility(100); v != want {
		t.Fatalf("window-100 volatility = %v, want %v", v, want)
	}
	if m.Blocks() != 4 {
		t.Fatalf("sealed blocks = %d, want 4", m.Blocks())
	}
	h := m.History()
	if len(h) != 4 || h[0] != 800 || h[1] != 900 || h[2] != 1012 || h[3] != 1012 {
		t.Fatalf("history = %v, want [800 900 1012 1012]", h)
	}
	h[0] = 7 // History must hand out a copy
	if m.History()[0] != 800 {
		t.Fatal("History exposed internal state")
	}
}

// TestHistoryBounded drives past maxHistory blocks and checks eviction.
func TestHistoryBounded(t *testing.T) {
	m := New(Config{Initial: 100}, 8)
	for i := 0; i < maxHistory+50; i++ {
		m.Seal(5) // slightly over target: fee creeps up
	}
	if n := len(m.History()); n != maxHistory {
		t.Fatalf("history holds %d entries, want exactly %d", n, maxHistory)
	}
	if m.Blocks() != maxHistory+50 {
		t.Fatalf("sealed count = %d, want %d", m.Blocks(), maxHistory+50)
	}
	h := m.History()
	if h[len(h)-1] != m.History()[len(h)-1] || h[0] >= h[len(h)-1] {
		t.Fatalf("history not oldest-first after eviction: first %d last %d", h[0], h[len(h)-1])
	}
}
