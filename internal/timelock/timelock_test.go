package timelock

import (
	"crypto/ed25519"
	"errors"
	"testing"

	"xdeal/internal/chain"
	"xdeal/internal/deal"
	"xdeal/internal/escrow"
	"xdeal/internal/gas"
	"xdeal/internal/sig"
	"xdeal/internal/sim"
	"xdeal/internal/token"
)

const (
	t0    = sim.Time(200)
	delta = sim.Duration(100)
)

var parties = []chain.Addr{"alice", "bob", "carol"}

type world struct {
	c     *chain.Chain
	sched *sim.Scheduler
	coin  *token.Fungible
	mgr   *Manager
	keys  map[string]sig.KeyPair
}

func newWorld(t *testing.T) *world {
	t.Helper()
	sched := sim.NewScheduler()
	keys := make(map[string]sig.KeyPair)
	pubs := make(map[string]ed25519.PublicKey)
	for _, p := range parties {
		kp := sig.GenerateKeyPair(string(p))
		keys[string(p)] = kp
		pubs[string(p)] = kp.Public
	}
	c := chain.New(chain.Config{
		ID:            "coinchain",
		BlockInterval: 10,
		Delays:        chain.SyncPolicy{Min: 1, Max: 3},
		Schedule:      gas.DefaultSchedule(),
		Keys:          pubs,
	}, sched, sim.NewRNG(7))
	w := &world{
		c:     c,
		sched: sched,
		coin:  token.NewFungible("coin", "bank"),
		mgr:   New(escrow.NewBook("coin", deal.Fungible)),
		keys:  keys,
	}
	c.MustDeploy("coin", w.coin)
	c.MustDeploy("coin-escrow", w.mgr)
	return w
}

func (w *world) call(sender, contract chain.Addr, method string, args any) *chain.Receipt {
	var rcpt *chain.Receipt
	w.c.Submit(&chain.Tx{Sender: sender, Contract: contract, Method: method, Args: args,
		Label: "test", OnReceipt: func(r *chain.Receipt) { rcpt = r }})
	w.sched.Run()
	return rcpt
}

// callAt schedules the call for virtual time at, then runs to completion.
func (w *world) callAt(at sim.Time, sender, contract chain.Addr, method string, args any) *chain.Receipt {
	var rcpt *chain.Receipt
	w.sched.At(at, func() {
		w.c.Submit(&chain.Tx{Sender: sender, Contract: contract, Method: method, Args: args,
			Label: "test", OnReceipt: func(r *chain.Receipt) { rcpt = r }})
	})
	w.sched.Run()
	return rcpt
}

func (w *world) fundAndEscrow(t *testing.T, p chain.Addr, amount uint64) {
	t.Helper()
	w.call("bank", "coin", token.MethodMint, token.MintArgs{To: p, Amount: amount})
	w.call(p, "coin", token.MethodApprove, token.ApproveArgs{Operator: "coin-escrow", Allowed: true})
	r := w.call(p, "coin-escrow", escrow.MethodEscrow, escrow.EscrowArgs{
		Deal: "D", Parties: parties, Info: Info{T0: t0, Delta: delta}, Amount: amount,
	})
	if r.Err != nil {
		t.Fatalf("escrow by %s failed: %v", p, r.Err)
	}
}

func (w *world) vote(p chain.Addr) sig.PathSig {
	return sig.NewVote("D", string(p), w.keys[string(p)])
}

func TestUnanimousDirectVotesRelease(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	// Alice pays Bob 100 tentatively.
	w.call("alice", "coin-escrow", escrow.MethodTransfer,
		escrow.TransferArgs{Deal: "D", To: "bob", Amount: 100})

	for _, p := range parties {
		r := w.call(p, "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: w.vote(p)})
		if r.Err != nil {
			t.Fatalf("vote by %s rejected: %v", p, r.Err)
		}
	}
	if w.mgr.Deal("D").Status != escrow.StatusCommitted {
		t.Fatalf("status = %s, want committed", w.mgr.Deal("D").Status)
	}
	if w.coin.BalanceOf("bob") != 100 {
		t.Fatalf("bob = %d, want 100", w.coin.BalanceOf("bob"))
	}
}

func TestPartialVotesDoNotRelease(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	w.call("alice", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: w.vote("alice")})
	w.call("bob", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: w.vote("bob")})
	if w.mgr.Deal("D").Status != escrow.StatusActive {
		t.Fatal("released without carol's vote")
	}
}

func TestForwardedVoteAccepted(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	// Carol's vote forwarded by Bob: path length 2.
	v := w.vote("carol").Forward("bob", w.keys["bob"])
	r := w.call("bob", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: v})
	if r.Err != nil {
		t.Fatalf("forwarded vote rejected: %v", r.Err)
	}
	if !w.mgr.Votes("D")["carol"] {
		t.Fatal("carol's vote not recorded")
	}
}

func TestVoteTimeoutScalesWithPathLength(t *testing.T) {
	// A direct vote must arrive before t0 + Δ = 300; a 2-hop vote before
	// t0 + 2Δ = 400.
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)

	// Direct vote at 330: late.
	r := w.callAt(330, "alice", "coin-escrow", MethodCommit,
		CommitArgs{Deal: "D", Vote: w.vote("alice")})
	if !errors.Is(r.Err, ErrVoteTooLate) {
		t.Fatalf("late direct vote err = %v, want ErrVoteTooLate", r.Err)
	}
	// Forwarded (2-hop) vote at the same instant: still in time.
	v := w.vote("carol").Forward("alice", w.keys["alice"])
	r = w.callAt(331, "alice", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: v})
	if r.Err != nil {
		t.Fatalf("2-hop vote at 331 rejected: %v", r.Err)
	}
	// 2-hop vote at 420: late.
	v2 := w.vote("bob").Forward("alice", w.keys["alice"])
	r = w.callAt(420, "alice", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: v2})
	if !errors.Is(r.Err, ErrVoteTooLate) {
		t.Fatalf("late 2-hop vote err = %v, want ErrVoteTooLate", r.Err)
	}
}

func TestFixedTimeoutRejectsForwardedVotes(t *testing.T) {
	// The naive rule (ablation): every vote must arrive before t0 + Δ,
	// so a forwarded vote arriving in (t0+Δ, t0+2Δ) is wrongly rejected.
	w := newWorld(t)
	w.mgr.FixedTimeout = true
	w.fundAndEscrow(t, "alice", 100)
	v := w.vote("carol").Forward("alice", w.keys["alice"])
	r := w.callAt(331, "alice", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: v})
	if !errors.Is(r.Err, ErrVoteTooLate) {
		t.Fatalf("err = %v, want ErrVoteTooLate under fixed timeouts", r.Err)
	}
}

func TestDuplicateVoteRejected(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	w.call("alice", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: w.vote("alice")})
	r := w.call("bob", "coin-escrow", MethodCommit,
		CommitArgs{Deal: "D", Vote: w.vote("alice").Forward("bob", w.keys["bob"])})
	if !errors.Is(r.Err, ErrDuplicateVote) {
		t.Fatalf("err = %v, want ErrDuplicateVote", r.Err)
	}
}

func TestOutsiderVoteRejected(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	mallory := sig.GenerateKeyPair("mallory")
	v := sig.NewVote("D", "mallory", mallory)
	r := w.call("mallory", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: v})
	if !errors.Is(r.Err, ErrNotVoter) {
		t.Fatalf("err = %v, want ErrNotVoter", r.Err)
	}
}

func TestOutsiderSignerRejected(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	mallory := sig.GenerateKeyPair("mallory")
	v := w.vote("alice").Forward("mallory", mallory)
	r := w.call("mallory", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: v})
	if !errors.Is(r.Err, ErrSignerNotParty) {
		t.Fatalf("err = %v, want ErrSignerNotParty", r.Err)
	}
}

func TestForgedVoteRejected(t *testing.T) {
	// Bob fabricates "carol's vote" by signing it himself.
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	forged := sig.PathSig{
		Deal: "D", Voter: "carol",
		Signers: []string{"carol"},
		Sigs:    [][]byte{w.keys["bob"].Sign([]byte("fake"))},
	}
	r := w.call("bob", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: forged})
	if r.Err == nil {
		t.Fatal("forged vote accepted")
	}
	if w.mgr.Votes("D")["carol"] {
		t.Fatal("forged vote recorded")
	}
}

func TestCrossDealReplayRejected(t *testing.T) {
	// A vote for D cannot be replayed for D2 (§5: D is effectively a
	// nonce). Register D2 and replay alice's D-vote against it.
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 50)
	w.call("bank", "coin", token.MethodMint, token.MintArgs{To: "bob", Amount: 10})
	w.call("bob", "coin", token.MethodApprove, token.ApproveArgs{Operator: "coin-escrow", Allowed: true})
	r := w.call("bob", "coin-escrow", escrow.MethodEscrow, escrow.EscrowArgs{
		Deal: "D2", Parties: parties, Info: Info{T0: t0, Delta: delta}, Amount: 10,
	})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	stolen := w.vote("alice") // signed for deal D
	stolen.Deal = "D2"
	r = w.call("mallory", "coin-escrow", MethodCommit, CommitArgs{Deal: "D2", Vote: stolen})
	if r.Err == nil {
		t.Fatal("cross-deal replay accepted")
	}
	// And a vote whose embedded deal disagrees with the call is rejected
	// outright.
	r = w.call("mallory", "coin-escrow", MethodCommit, CommitArgs{Deal: "D2", Vote: w.vote("alice")})
	if !errors.Is(r.Err, ErrWrongDeal) {
		t.Fatalf("err = %v, want ErrWrongDeal", r.Err)
	}
}

func TestRefundAfterDeadline(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	w.call("alice", "coin-escrow", escrow.MethodTransfer,
		escrow.TransferArgs{Deal: "D", To: "bob", Amount: 100})

	// Too early: t0 + N·Δ = 200 + 3·100 = 500.
	r := w.callAt(400, "alice", "coin-escrow", MethodRefund, RefundArgs{Deal: "D"})
	if !errors.Is(r.Err, ErrTooEarlyRefund) {
		t.Fatalf("early refund err = %v, want ErrTooEarlyRefund", r.Err)
	}
	// After the deadline the refund succeeds and follows the A map.
	r = w.callAt(520, "alice", "coin-escrow", MethodRefund, RefundArgs{Deal: "D"})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if w.coin.BalanceOf("alice") != 100 {
		t.Fatalf("alice = %d, want full refund of 100", w.coin.BalanceOf("alice"))
	}
	if w.coin.BalanceOf("bob") != 0 {
		t.Fatal("bob received funds from aborted deal")
	}
	if w.mgr.Deal("D").Status != escrow.StatusAborted {
		t.Fatal("status not aborted")
	}
}

func TestVotesRejectedAfterRefund(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	w.callAt(520, "alice", "coin-escrow", MethodRefund, RefundArgs{Deal: "D"})
	r := w.call("alice", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: w.vote("alice")})
	if !errors.Is(r.Err, escrow.ErrNotActive) {
		t.Fatalf("err = %v, want ErrNotActive", r.Err)
	}
}

func TestRefundRejectedAfterCommit(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	for _, p := range parties {
		w.call(p, "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: w.vote(p)})
	}
	r := w.callAt(600, "x", "coin-escrow", MethodRefund, RefundArgs{Deal: "D"})
	if !errors.Is(r.Err, escrow.ErrNotActive) {
		t.Fatalf("err = %v, want ErrNotActive", r.Err)
	}
}

func TestLastMinuteForwardingWindow(t *testing.T) {
	// Theorem 5.1's arithmetic: if Z's vote is accepted at contract a at
	// time < t0+|p|Δ, a compliant X can forward it to contract b before
	// t0+(|p|+1)Δ, where it must be accepted. Simulate the boundary: a
	// 1-hop vote lands just before 300; the 2-hop forward lands before
	// 400 and is accepted.
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	r := w.callAt(280, "carol", "coin-escrow", MethodCommit,
		CommitArgs{Deal: "D", Vote: w.vote("carol")})
	if r.Err != nil {
		t.Fatalf("vote at 280 rejected: %v", r.Err)
	}
	// X observes it (≤ Δ later) and forwards; arrival just before 400.
	v := w.vote("bob").Forward("alice", w.keys["alice"])
	r = w.callAt(380, "alice", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: v})
	if r.Err != nil {
		t.Fatalf("forwarded vote inside window rejected: %v", r.Err)
	}
}

func TestCommitGasDominatedBySignatures(t *testing.T) {
	// Figure 4: commit costs O(n²) signature verifications per contract
	// worst case. Exercise the worst case at n = 3: each vote arrives
	// with a maximal path (n signatures), so 3 votes ⇒ up to 9
	// verifications; writes stay constant.
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 90)
	before := w.c.Meter().Snapshot()

	votes := []sig.PathSig{
		w.vote("alice").Forward("bob", w.keys["bob"]).Forward("carol", w.keys["carol"]),
		w.vote("bob").Forward("carol", w.keys["carol"]).Forward("alice", w.keys["alice"]),
		w.vote("carol").Forward("alice", w.keys["alice"]).Forward("bob", w.keys["bob"]),
	}
	for _, v := range votes {
		r := w.call(chain.Addr(v.Signers[len(v.Signers)-1]), "coin-escrow", MethodCommit,
			CommitArgs{Deal: "D", Vote: v})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	delta := w.c.Meter().Snapshot().Sub(before)
	if got := delta.Counts[gas.OpSigVerify]; got != 9 {
		t.Fatalf("sig verifications = %d, want n² = 9", got)
	}
	if w.mgr.Deal("D").Status != escrow.StatusCommitted {
		t.Fatal("deal did not commit")
	}
}

func TestVoteAcceptedEventCarriesPath(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	var got []VoteEvent
	w.c.Subscribe(func(ev chain.Event) {
		if ev.Kind == EventVoteAccepted {
			got = append(got, ev.Data.(VoteEvent))
		}
	})
	w.call("carol", "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: w.vote("carol")})
	if len(got) != 1 {
		t.Fatalf("vote events = %d, want 1", len(got))
	}
	if got[0].Voter != "carol" || got[0].Vote.Len() != 1 {
		t.Fatalf("event = %+v", got[0])
	}
	// The carried path signature must itself verify, so observers can
	// forward it.
	if err := got[0].Vote.Verify(w.c.Keys(), nil); err != nil {
		t.Fatalf("event vote does not verify: %v", err)
	}
}

func TestUnknownDealVoteRejected(t *testing.T) {
	w := newWorld(t)
	r := w.call("alice", "coin-escrow", MethodCommit, CommitArgs{Deal: "nope", Vote: w.vote("alice")})
	if !errors.Is(r.Err, escrow.ErrUnknownDeal) {
		t.Fatalf("err = %v, want ErrUnknownDeal", r.Err)
	}
}

func TestBadArgsRejected(t *testing.T) {
	w := newWorld(t)
	r := w.call("alice", "coin-escrow", MethodCommit, "garbage")
	if !errors.Is(r.Err, chain.ErrBadArgs) {
		t.Fatalf("err = %v, want ErrBadArgs", r.Err)
	}
	r = w.call("alice", "coin-escrow", MethodRefund, 42)
	if !errors.Is(r.Err, chain.ErrBadArgs) {
		t.Fatalf("err = %v, want ErrBadArgs", r.Err)
	}
}

func TestEscrowStillWorksThroughEmbedding(t *testing.T) {
	// The embedded escrow.Manager methods remain reachable.
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 100)
	res, err := w.c.Query("coin-escrow", escrow.MethodStatus, "D")
	if err != nil {
		t.Fatal(err)
	}
	v := res.(escrow.View)
	if v.Deposited["alice"] != 100 {
		t.Fatalf("view = %+v", v)
	}
	info, ok := v.Info.(Info)
	if !ok || info.T0 != t0 || info.Delta != delta {
		t.Fatalf("info = %+v", v.Info)
	}
}

func TestAbortCostRangesFromFreeToNearCommit(t *testing.T) {
	// §7.1: "In the best case, a deal can abort with no signature
	// verifications, but in the worst case, aborting can cost almost as
	// much as committing."
	// Best case: nobody votes; the refund performs zero verifications.
	w := newWorld(t)
	w.fundAndEscrow(t, "alice", 50)
	before := w.c.Meter().Snapshot()
	if r := w.callAt(520, "alice", "coin-escrow", MethodRefund, RefundArgs{Deal: "D"}); r.Err != nil {
		t.Fatal(r.Err)
	}
	delta := w.c.Meter().Snapshot().Sub(before)
	if delta.Counts[gas.OpSigVerify] != 0 {
		t.Fatalf("best-case abort verified %d signatures, want 0", delta.Counts[gas.OpSigVerify])
	}

	// Worst case: n−1 parties vote with maximal paths before the timeout
	// kills the deal anyway — the contract has already paid for almost
	// the full commit's verifications.
	w = newWorld(t)
	w.fundAndEscrow(t, "alice", 50)
	before = w.c.Meter().Snapshot()
	votes := []sig.PathSig{
		w.vote("alice").Forward("bob", w.keys["bob"]).Forward("carol", w.keys["carol"]),
		w.vote("bob").Forward("carol", w.keys["carol"]).Forward("alice", w.keys["alice"]),
		// carol never votes: the deal must abort.
	}
	for _, v := range votes {
		if r := w.call(chain.Addr(v.Signers[len(v.Signers)-1]), "coin-escrow", MethodCommit,
			CommitArgs{Deal: "D", Vote: v}); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if r := w.callAt(520, "alice", "coin-escrow", MethodRefund, RefundArgs{Deal: "D"}); r.Err != nil {
		t.Fatal(r.Err)
	}
	delta = w.c.Meter().Snapshot().Sub(before)
	// Two accepted 3-hop votes: 6 of the 9 verifications a commit costs.
	if got := delta.Counts[gas.OpSigVerify]; got != 6 {
		t.Fatalf("worst-case abort verified %d signatures, want 6 (near the commit's 9)", got)
	}
	if w.mgr.Deal("D").Status != escrow.StatusAborted {
		t.Fatal("deal did not abort")
	}
}

// fundAndEscrowInfo is fundAndEscrow with an explicit Dinfo, for the
// depth-laddered refund tests.
func (w *world) fundAndEscrowInfo(t *testing.T, p chain.Addr, amount uint64, info Info) {
	t.Helper()
	w.call("bank", "coin", token.MethodMint, token.MintArgs{To: p, Amount: amount})
	w.call(p, "coin", token.MethodApprove, token.ApproveArgs{Operator: "coin-escrow", Allowed: true})
	r := w.call(p, "coin-escrow", escrow.MethodEscrow, escrow.EscrowArgs{
		Deal: "D", Parties: parties, Info: info, Amount: amount,
	})
	if r.Err != nil {
		t.Fatalf("escrow by %s failed: %v", p, r.Err)
	}
}

// A registration carrying the deal digraph's actual relay depth tightens
// the refund floor from t0 + N·Δ to t0 + D·Δ: with D = 2 of N = 3, the
// refund opens a full Δ earlier than the static worst case.
func TestRefundFloorUsesRegisteredDepth(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrowInfo(t, "alice", 100, Info{T0: t0, Delta: delta, Depth: 2})

	// Before t0 + 2Δ = 400: still too early.
	r := w.callAt(370, "alice", "coin-escrow", MethodRefund, RefundArgs{Deal: "D"})
	if !errors.Is(r.Err, ErrTooEarlyRefund) {
		t.Fatalf("refund before depth floor err = %v, want ErrTooEarlyRefund", r.Err)
	}
	// Past the depth floor but well before the legacy N floor (500).
	r = w.callAt(420, "alice", "coin-escrow", MethodRefund, RefundArgs{Deal: "D"})
	if r.Err != nil {
		t.Fatalf("refund past depth floor rejected: %v", r.Err)
	}
	if w.mgr.Deal("D").Status != escrow.StatusAborted {
		t.Fatalf("status = %s, want aborted", w.mgr.Deal("D").Status)
	}
	if w.coin.BalanceOf("alice") != 100 {
		t.Fatalf("alice refund = %d, want 100", w.coin.BalanceOf("alice"))
	}
}

// A depth wider than the party count cannot loosen the floor: it clamps
// to N, the same bound legacy zero-depth registrations get.
func TestRefundFloorDepthClampsToParties(t *testing.T) {
	w := newWorld(t)
	w.fundAndEscrowInfo(t, "alice", 100, Info{T0: t0, Delta: delta, Depth: 9})

	// Before t0 + N·Δ = 500, a clamped ladder still refuses.
	r := w.callAt(420, "alice", "coin-escrow", MethodRefund, RefundArgs{Deal: "D"})
	if !errors.Is(r.Err, ErrTooEarlyRefund) {
		t.Fatalf("refund before clamped floor err = %v, want ErrTooEarlyRefund", r.Err)
	}
	r = w.callAt(520, "alice", "coin-escrow", MethodRefund, RefundArgs{Deal: "D"})
	if r.Err != nil {
		t.Fatalf("refund past clamped floor rejected: %v", r.Err)
	}
}
