// Package timelock implements the timelock commit protocol of §5: a fully
// decentralized commit protocol for cross-chain deals under synchronous
// communication.
//
// Escrowed assets are released when the escrow contract has accepted a
// commit vote from every party; there are no explicit abort votes.
// Timeouts guarantee weak liveness: if some party's vote never arrives,
// the contract refunds its assets at t0 + N·Δ.
//
// The subtle part is the per-vote timeout. A vote from party X arriving
// with path signature p is accepted only if it arrives before
// t0 + |p|·Δ: each forwarding hop buys one extra Δ, reflecting the
// worst-case time for a motivated party to observe a vote on one chain
// and forward it to another. §5 shows that naive per-party timeouts are
// contradictory; the naive variant is available behind FixedTimeout for
// the ablation experiment that demonstrates the resulting safety
// violation.
package timelock

import (
	"errors"
	"fmt"

	"xdeal/internal/chain"
	"xdeal/internal/escrow"
	"xdeal/internal/sig"
	"xdeal/internal/sim"
)

// Contract methods added on top of the escrow.Manager methods.
const (
	MethodCommit = "commit" // commit(D, v, p) — a vote with path signature
	MethodRefund = "refund" // poke the contract to refund after timeout
)

// Event kinds.
const (
	// EventVoteAccepted is emitted when the contract accepts a vote; the
	// data is a VoteEvent. Motivated parties observe these on their
	// outgoing assets' chains and forward them to their incoming ones.
	EventVoteAccepted = "vote-accepted"
)

// Info is the timelock Dinfo stored with each deal registration: the
// commit-phase start time and the synchrony bound. The party list is
// stored alongside by the escrow layer.
type Info struct {
	T0    sim.Time
	Delta sim.Duration
	// Depth is the timeout-ladder depth the refund floor uses: the deal
	// digraph's actual relay depth (deal.Spec.VoteDepth) instead of the
	// static worst case N = len(parties). Zero means unset (legacy
	// registrations) and falls back to N; values above N clamp to N.
	// Only the refund floor tightens — the per-vote acceptance rule is
	// untouched, each forwarding hop still buys one Δ.
	Depth int
}

// CommitArgs is the argument to MethodCommit.
type CommitArgs struct {
	Deal string
	Vote sig.PathSig
}

// RefundArgs is the argument to MethodRefund.
type RefundArgs struct {
	Deal string
}

// VoteEvent reports an accepted vote.
type VoteEvent struct {
	Deal  string
	Voter chain.Addr
	Vote  sig.PathSig // full path signature, so observers can forward it
}

// Errors specific to the timelock manager.
var (
	ErrVoteTooLate     = errors.New("timelock: vote arrived after its path timeout")
	ErrNotVoter        = errors.New("timelock: voter not in the deal's party list")
	ErrSignerNotParty  = errors.New("timelock: path signer not in the deal's party list")
	ErrDuplicateVote   = errors.New("timelock: vote from this party already accepted")
	ErrTooEarlyRefund  = errors.New("timelock: refund requested before the deal's timeout")
	ErrBadInfo         = errors.New("timelock: deal info is not timelock info")
	ErrWrongDeal       = errors.New("timelock: vote is for a different deal")
	ErrMissingTimeouts = errors.New("timelock: non-positive t0 or delta")
)

// Manager is the TimelockManager contract of Figure 5: an escrow manager
// whose assets are released by unanimous path-signed votes and refunded
// by timeout.
type Manager struct {
	*escrow.Manager
	// FixedTimeout switches to the broken naive rule (every vote must
	// arrive before t0 + Δ regardless of path length). Exists only to
	// reproduce §5's impossibility argument experimentally.
	FixedTimeout bool

	votes map[string]map[chain.Addr]bool // deal -> voters accepted
}

// New creates a timelock escrow manager over the given bookkeeping.
func New(book *escrow.Book) *Manager {
	return &Manager{
		Manager: escrow.NewManager(book),
		votes:   make(map[string]map[chain.Addr]bool),
	}
}

// Votes returns the set of accepted voters for a deal (test/inspection).
func (m *Manager) Votes(dealID string) map[chain.Addr]bool {
	out := make(map[chain.Addr]bool, len(m.votes[dealID]))
	for v := range m.votes[dealID] {
		out[v] = true
	}
	return out
}

// Invoke implements chain.Contract.
func (m *Manager) Invoke(env *chain.Env, method string, args any) (any, error) {
	switch method {
	case MethodCommit:
		a, ok := args.(CommitArgs)
		if !ok {
			return nil, chain.ErrBadArgs
		}
		return nil, m.handleCommit(env, a)
	case MethodRefund:
		a, ok := args.(RefundArgs)
		if !ok {
			return nil, chain.ErrBadArgs
		}
		return nil, m.handleRefund(env, a)
	default:
		return m.Manager.Invoke(env, method, args)
	}
}

// handleCommit is the commit function of Figure 5.
func (m *Manager) handleCommit(env *chain.Env, a CommitArgs) error {
	st := m.Deal(a.Deal)
	if st == nil {
		return fmt.Errorf("%w: %s", escrow.ErrUnknownDeal, a.Deal)
	}
	if st.Status != escrow.StatusActive {
		return fmt.Errorf("%w: %s is %s", escrow.ErrNotActive, a.Deal, st.Status)
	}
	info, ok := st.Info.(Info)
	if !ok {
		return ErrBadInfo
	}
	vote := a.Vote
	if vote.Deal != a.Deal {
		return ErrWrongDeal
	}
	voter := chain.Addr(vote.Voter)

	// require(now < start + path.length * DELTA) — not timed out.
	deadline := info.T0 + sim.Time(vote.Len())*info.Delta
	if m.FixedTimeout {
		deadline = info.T0 + info.Delta // the broken naive rule
	}
	if env.Now() >= deadline {
		return fmt.Errorf("%w: now=%d deadline=%d |p|=%d", ErrVoteTooLate, env.Now(), deadline, vote.Len())
	}
	// require(parties.contains(voter)) — legit voters only.
	if !containsAddr(st.Parties, voter) {
		return fmt.Errorf("%w: %s", ErrNotVoter, voter)
	}
	// require(!voted.contains(voter)) — no duplicate votes.
	accepted := m.votes[a.Deal]
	if accepted == nil {
		accepted = make(map[chain.Addr]bool)
		m.votes[a.Deal] = accepted
	}
	if accepted[voter] {
		return fmt.Errorf("%w: %s", ErrDuplicateVote, voter)
	}
	// require(checkUnique(signers)) and signers ⊆ plist.
	for _, s := range vote.Signers {
		if !containsAddr(st.Parties, chain.Addr(s)) {
			return fmt.Errorf("%w: %s", ErrSignerNotParty, s)
		}
	}
	// Verify every signature in the path (the expensive step; |p|
	// verifications at 3000 gas each). Duplicate-signer detection is part
	// of path verification.
	if err := env.VerifyPath(vote); err != nil {
		return err
	}

	// voted.push(voter) — remember who voted.
	accepted[voter] = true
	env.Write(1)
	env.Emit(EventVoteAccepted, VoteEvent{Deal: a.Deal, Voter: voter, Vote: vote.Clone()})

	// Release when every party has voted.
	if len(accepted) == len(st.Parties) {
		if err := m.FinalizeCommit(env, a.Deal); err != nil {
			return err
		}
		env.Emit(escrow.EventCommitted, escrow.OutcomeEvent{Deal: a.Deal, Status: escrow.StatusCommitted})
	}
	return nil
}

// handleRefund refunds escrowed assets once the overall deal timeout
// t0 + D·Δ has passed without unanimous votes, where D is the
// registered ladder depth (Info.Depth, defaulting to the worst case
// N = len(parties) when unset). Anyone may poke it; in practice
// compliant parties poke the contracts holding their assets (weak
// liveness), and watchtowers may poke on behalf of others.
func (m *Manager) handleRefund(env *chain.Env, a RefundArgs) error {
	st := m.Deal(a.Deal)
	if st == nil {
		return fmt.Errorf("%w: %s", escrow.ErrUnknownDeal, a.Deal)
	}
	if st.Status != escrow.StatusActive {
		return fmt.Errorf("%w: %s is %s", escrow.ErrNotActive, a.Deal, st.Status)
	}
	info, ok := st.Info.(Info)
	if !ok {
		return ErrBadInfo
	}
	depth := len(st.Parties)
	if info.Depth > 0 && info.Depth < depth {
		depth = info.Depth
	}
	deadline := info.T0 + sim.Time(depth)*info.Delta
	if env.Now() < deadline {
		return fmt.Errorf("%w: now=%d deadline=%d", ErrTooEarlyRefund, env.Now(), deadline)
	}
	if err := m.FinalizeAbort(env, a.Deal); err != nil {
		return err
	}
	env.Emit(escrow.EventAborted, escrow.OutcomeEvent{Deal: a.Deal, Status: escrow.StatusAborted})
	return nil
}

func containsAddr(list []chain.Addr, a chain.Addr) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}
