package timelock

import (
	"crypto/ed25519"
	"testing"
	"testing/quick"

	"xdeal/internal/chain"
	"xdeal/internal/deal"
	"xdeal/internal/escrow"
	"xdeal/internal/gas"
	"xdeal/internal/sig"
	"xdeal/internal/sim"
	"xdeal/internal/token"
)

// TestTwoDealsAtOneContractSettleIndependently exercises the isolation
// role of escrow (§10): one escrow contract manages two concurrent deals
// whose outcomes diverge — D1 commits, D2 times out — without the
// bookkeeping bleeding across.
func TestTwoDealsAtOneContractSettleIndependently(t *testing.T) {
	w := newWorld(t)
	info := Info{T0: t0, Delta: delta}

	// D1: alice escrows 60 and pays bob.
	w.call("bank", "coin", token.MethodMint, token.MintArgs{To: "alice", Amount: 100})
	w.call("alice", "coin", token.MethodApprove, token.ApproveArgs{Operator: "coin-escrow", Allowed: true})
	if r := w.call("alice", "coin-escrow", escrow.MethodEscrow, escrow.EscrowArgs{
		Deal: "D1", Parties: parties, Info: info, Amount: 60,
	}); r.Err != nil {
		t.Fatal(r.Err)
	}
	w.call("alice", "coin-escrow", escrow.MethodTransfer,
		escrow.TransferArgs{Deal: "D1", To: "bob", Amount: 60})

	// D2: carol escrows 40 for a deal that will never gather votes.
	w.call("bank", "coin", token.MethodMint, token.MintArgs{To: "carol", Amount: 40})
	w.call("carol", "coin", token.MethodApprove, token.ApproveArgs{Operator: "coin-escrow", Allowed: true})
	if r := w.call("carol", "coin-escrow", escrow.MethodEscrow, escrow.EscrowArgs{
		Deal: "D2", Parties: parties, Info: info, Amount: 40,
	}); r.Err != nil {
		t.Fatal(r.Err)
	}

	// D1 gathers all three votes and commits.
	for _, p := range parties {
		v := sig.NewVote("D1", string(p), w.keys[string(p)])
		if r := w.call(p, "coin-escrow", MethodCommit, CommitArgs{Deal: "D1", Vote: v}); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if w.mgr.Deal("D1").Status != escrow.StatusCommitted {
		t.Fatal("D1 did not commit")
	}
	// D2 is untouched by D1's commit.
	if w.mgr.Deal("D2").Status != escrow.StatusActive {
		t.Fatalf("D2 status = %s, want still active", w.mgr.Deal("D2").Status)
	}
	if w.coin.BalanceOf("bob") != 60 {
		t.Fatalf("bob = %d, want 60 from D1 only", w.coin.BalanceOf("bob"))
	}

	// D2 times out and refunds carol; D1's commit is unaffected.
	if r := w.callAt(600, "carol", "coin-escrow", MethodRefund, RefundArgs{Deal: "D2"}); r.Err != nil {
		t.Fatal(r.Err)
	}
	if w.coin.BalanceOf("carol") != 40 {
		t.Fatalf("carol = %d, want her 40 refunded", w.coin.BalanceOf("carol"))
	}
	if w.mgr.Deal("D1").Status != escrow.StatusCommitted {
		t.Fatal("D2's refund disturbed D1")
	}
	// A D1 vote replayed against D2 must not count (votes are bound to
	// deal ids through the signed message).
	if w.mgr.Votes("D2")["alice"] {
		t.Fatal("vote bookkeeping leaked across deals")
	}
}

// TestQuickVoteOrderIrrelevant: the contract releases iff it accepts all
// n votes in time, regardless of arrival order and forwarding paths.
func TestQuickVoteOrderIrrelevant(t *testing.T) {
	prop := func(permSeed uint64, pathBits uint8) bool {
		w := newWorldQuick()
		w.call("bank", "coin", token.MethodMint, token.MintArgs{To: "alice", Amount: 10})
		w.call("alice", "coin", token.MethodApprove, token.ApproveArgs{Operator: "coin-escrow", Allowed: true})
		if r := w.call("alice", "coin-escrow", escrow.MethodEscrow, escrow.EscrowArgs{
			Deal: "D", Parties: parties, Info: Info{T0: t0, Delta: delta}, Amount: 10,
		}); r.Err != nil {
			return false
		}
		// Pseudo-random vote order.
		order := []int{0, 1, 2}
		s := permSeed
		for i := 2; i > 0; i-- {
			s = s*6364136223846793005 + 1442695040888963407
			j := int(s % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		for k, idx := range order {
			voter := parties[idx]
			v := sig.NewVote("D", string(voter), w.keys[string(voter)])
			// Optionally route through a forwarder (one extra hop).
			sender := voter
			if pathBits&(1<<k) != 0 {
				fw := parties[(idx+1)%len(parties)]
				v = v.Forward(string(fw), w.keys[string(fw)])
				sender = fw
			}
			if r := w.call(sender, "coin-escrow", MethodCommit, CommitArgs{Deal: "D", Vote: v}); r.Err != nil {
				return false
			}
		}
		return w.mgr.Deal("D").Status == escrow.StatusCommitted
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// newWorldQuick is newWorld without the testing.T, for quick properties.
func newWorldQuick() *world {
	sched := sim.NewScheduler()
	keys := make(map[string]sig.KeyPair)
	pubs := make(map[string]ed25519.PublicKey)
	for _, p := range parties {
		kp := sig.GenerateKeyPair(string(p))
		keys[string(p)] = kp
		pubs[string(p)] = kp.Public
	}
	c := chain.New(chain.Config{
		ID:            "coinchain",
		BlockInterval: 10,
		Delays:        chain.SyncPolicy{Min: 1, Max: 3},
		Schedule:      gas.DefaultSchedule(),
		Keys:          pubs,
	}, sched, sim.NewRNG(7))
	w := &world{
		sched: sched,
		keys:  keys,
		c:     c,
		coin:  token.NewFungible("coin", "bank"),
		mgr:   New(escrow.NewBook("coin", deal.Fungible)),
	}
	c.MustDeploy("coin", w.coin)
	c.MustDeploy("coin-escrow", w.mgr)
	return w
}
