module xdeal

go 1.24
