package xdeal_test

import (
	"fmt"

	"xdeal"
)

// ExampleRun executes the paper's running example — Alice brokers Bob's
// theater tickets to Carol — on the timelock protocol. The simulation is
// deterministic, so the settlement is reproducible byte for byte.
func ExampleRun() {
	spec := xdeal.BrokerDeal(2000, 1000) // commit phase at t0=2000, Δ=1000
	r, err := xdeal.Run(spec, xdeal.Options{Seed: 1, Protocol: xdeal.Timelock})
	if err != nil {
		panic(err)
	}
	fmt.Print(r.Summary())
	fmt.Println("ticket owner:", r.FinalTokenOwners["ticketchain/ticket-escrow"]["seat-1A"])
	// Output:
	// deal broker: COMMITTED everywhere
	//   escrow coinchain/coin-escrow          committed
	//   escrow ticketchain/ticket-escrow      committed
	//   party alice      compliant  +1@coinchain/coin-escrow
	//   party bob        compliant  +100@coinchain/coin-escrow
	//   party carol      compliant  -101@coinchain/coin-escrow
	// ticket owner: carol
}

// ExampleSpec_WellFormed shows the §5.1 well-formedness check: a deal
// whose digraph is not strongly connected contains free riders.
func ExampleSpec_WellFormed() {
	spec := xdeal.BrokerDeal(2000, 1000)
	fmt.Println("broker deal well-formed:", spec.WellFormed())

	// Add a party that only receives: a free rider.
	spec.Parties = append(spec.Parties, "leech")
	spec.Transfers = append(spec.Transfers, xdeal.Transfer{
		From: "alice", To: "leech",
		Asset: xdeal.AssetRef{Chain: "coinchain", Token: "coin", Escrow: "coin-escrow",
			Kind: xdeal.Fungible, Amount: 1},
	})
	fmt.Println("with free rider:", spec.WellFormed())
	fmt.Println("free riders:", spec.FreeRiders())
	// Output:
	// broker deal well-formed: true
	// with free rider: false
	// free riders: [leech]
}
