// Swap: the §8 comparison between deals and the prior art they
// generalize — atomic cross-chain swaps built from hashed timelock
// contracts (HTLCs).
//
// The example settles the same circular swap twice, once with the
// timelock deal protocol and once with the HTLC baseline, compares their
// gas profiles, and then shows the expressiveness gap: the HTLC protocol
// structurally rejects the broker deal, because Alice has nothing to swap.
package main

import (
	"fmt"
	"log"
	"os"

	"xdeal"
	"xdeal/internal/harness"
	"xdeal/internal/htlc"
)

func main() {
	fmt.Println("=== §8: deals vs HTLC swaps ===")
	fmt.Println()

	// One 4-party circular swap, settled both ways.
	row, err := harness.RunSwapComparison(4, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-party circular swap settles under both protocols: deal=%v, htlc=%v\n\n",
		row.DealCommitted, row.HTLCCommitted)
	fmt.Printf("%-22s %12s %12s\n", "", "deal(timelock)", "htlc")
	fmt.Printf("%-22s %12d %12d\n", "signature verifications", row.DealSigVerifs, row.HTLCSigVerifs)
	fmt.Printf("%-22s %12d %12d\n", "protocol gas", row.DealGas, row.HTLCGas)
	fmt.Println()
	fmt.Println("HTLC claims verify one hash preimage each — no signatures — so pure")
	fmt.Println("swaps are cheaper. Deals pay for generality:")
	fmt.Println()

	// The expressiveness gap.
	broker := xdeal.BrokerDeal(2000, 1000)
	if err := htlc.Supports(broker); err != nil {
		fmt.Printf("htlc.Supports(broker deal) rejects it:\n  %v\n\n", err)
	} else {
		fmt.Println("BUG: the HTLC baseline accepted the broker deal")
		os.Exit(1)
	}

	r, err := xdeal.Run(broker, xdeal.Options{Seed: 5, Protocol: xdeal.Timelock})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the deal protocol settles it:")
	fmt.Print(r.Summary())

	// The full sweep, as printed by cmd/benchtab swap.
	fmt.Println()
	if err := harness.SwapVsDeal(os.Stdout, []int{2, 3, 4, 6}, 5); err != nil {
		log.Fatal(err)
	}
}
