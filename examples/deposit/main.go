// Deposit incentives: §9's mechanism-design sketch, made concrete.
//
// "To discourage maliciously joining then aborting deals, a party might
// escrow a small deposit that is lost if that party is the first to cause
// the deal to fail."
//
// The example builds a deposit vault as a *custom user contract* on top
// of the library: each party locks a deposit; after the deal decides, the
// vault settles against a CBC block-subsequence proof. The proof's vote
// replay identifies the decisive abort voter — the first party to cause
// the failure — whose deposit is forfeited to the others. On commit (or
// an abort not attributable to a depositor) everyone is refunded.
//
// This also demonstrates why block proofs earn their keep despite being
// costlier than status certificates (§6.2): only the full vote sequence
// carries the culprit's identity.
package main

import (
	"fmt"
	"log"

	"xdeal"
	"xdeal/internal/cbc"
	"xdeal/internal/chain"
	"xdeal/internal/engine"
	"xdeal/internal/escrow"
	"xdeal/internal/incentive"
	"xdeal/internal/party"
	"xdeal/internal/token"
)

// runScenario executes the broker deal with deposits and reports the
// vault settlement. When bob deviates by aborting, his deposit is lost.
func runScenario(title string, behaviors map[xdeal.Addr]xdeal.Behavior) {
	const depositAmount = 10
	spec := xdeal.BrokerDeal(2000, 1000)
	w, err := engine.Build(spec, engine.Options{
		Seed: 3, Protocol: party.ProtoCBC, F: 1,
		Behaviors: behaviors,
		// Block proofs so the settlement can identify the culprit.
		ProofFormat: party.ProofBlocks,
	})
	if err != nil {
		log.Fatal(err)
	}

	coinChain := w.Chains["coinchain"]
	v := incentive.NewVault("coin", spec.ID, spec.Parties)
	coinChain.MustDeploy("deposit-vault", v)

	// Fund the deposits and lock them before the deal begins. Each stage
	// is drained before the next so approvals precede the transferFrom.
	mustLand := func(r *chain.Receipt) {
		if r.Err != nil {
			log.Fatalf("deposit scenario: transaction %s.%s rejected: %v",
				r.Tx.Contract, r.Tx.Method, r.Err)
		}
	}
	for _, p := range spec.Parties {
		coinChain.Submit(&chain.Tx{Sender: "mint-authority", Contract: "coin",
			Method: token.MethodMint, Label: engine.LabelSetup,
			Args:      token.MintArgs{To: p, Amount: depositAmount},
			OnReceipt: mustLand})
		coinChain.Submit(&chain.Tx{Sender: p, Contract: "coin",
			Method: token.MethodApprove, Label: engine.LabelSetup,
			Args:      token.ApproveArgs{Operator: "deposit-vault", Allowed: true},
			OnReceipt: mustLand})
	}
	w.Sched.Run()
	for _, p := range spec.Parties {
		coinChain.Submit(&chain.Tx{Sender: p, Contract: "deposit-vault",
			Method: incentive.MethodDeposit, Label: party.LabelEscrow,
			Args:      incentive.DepositArgs{Amount: depositAmount},
			OnReceipt: mustLand})
	}
	w.Sched.Run()
	for _, p := range spec.Parties {
		if v.Deposit(p) != depositAmount {
			log.Fatalf("deposit by %s did not land", p)
		}
	}

	// Once the deal has started on the CBC, pin the vault's Dinfo; once
	// decided, settle with a block proof.
	settled := false
	w.CBC.Subscribe(func(b *cbc.Block) {
		if v.Info.Committee.Size() == 0 {
			if h, ok := w.CBC.StartHash(spec.ID); ok {
				v.PinInfo(cbc.Info{StartHash: h, Committee: w.CBC.InitialCommittee()})
			}
		}
		if settled || v.Info.Committee.Size() == 0 {
			return
		}
		if d := w.CBC.Deal(spec.ID); d != nil && d.Status != escrow.StatusActive {
			settled = true
			proof, err := w.CBC.BlockProofFor(spec.ID)
			if err != nil {
				return
			}
			coinChain.Submit(&chain.Tx{Sender: "alice", Contract: "deposit-vault",
				Method: incentive.MethodSettle, Label: party.LabelCommit,
				Args:      incentive.SettleArgs{Proof: proof},
				OnReceipt: mustLand})
		}
	})

	coin := w.Fungibles["coinchain/coin-escrow"]
	before := map[xdeal.Addr]uint64{}
	for _, p := range spec.Parties {
		before[p] = coin.BalanceOf(p)
	}

	r := w.Run()

	fmt.Printf("--- %s ---\n", title)
	fmt.Printf("deal outcome: committed=%v aborted=%v\n", r.AllCommitted, r.AllAborted)
	if v.Forfeited() != "" {
		fmt.Printf("vault: %s was first to cause the failure; deposit forfeited\n", v.Forfeited())
	} else {
		fmt.Println("vault: no culprit; all deposits refunded")
	}
	for _, p := range spec.Parties {
		fmt.Printf("  %-6s deposit-adjusted coin delta: %+d\n",
			p, int64(coin.BalanceOf(p))-int64(before[p]))
	}
	fmt.Println()
}

func main() {
	fmt.Println("=== §9 deposit incentives on the CBC protocol ===")
	fmt.Println()
	runScenario("all parties compliant", nil)
	runScenario("bob joins, then aborts immediately", map[xdeal.Addr]xdeal.Behavior{
		"bob": {AbortImmediately: true},
	})
}
