// Auction: the §9 example that, like brokering, cannot be expressed as an
// atomic swap — "Alice transfers assets she did not own at the start."
//
// A seller auctions a ticket. Bidders commit to sealed bids (commit-reveal,
// per the paper's footnote: "Bob and Carol should use a commit-reveal
// pattern to ensure neither can observe the other's bid"), then reveal.
// The settlement — winner pays, winner receives the ticket, the loser's
// escrowed bid returns — is executed as a single cross-chain deal on the
// CBC protocol, so either the whole settlement happens or none of it.
package main

import (
	"fmt"
	"log"

	"xdeal"
	"xdeal/internal/sig"
)

// sealedBid is a commit-reveal bid: the bidder first publishes
// H(amount ‖ salt), then reveals both.
type sealedBid struct {
	bidder xdeal.Addr
	amount uint64
	salt   string
}

func (b sealedBid) commitment() [32]byte {
	return sig.HashStrings("bid", string(b.bidder), fmt.Sprint(b.amount), b.salt)
}

func main() {
	fmt.Println("=== §9 ticket auction ===")
	fmt.Println()

	// Bidding phase (off the deal; the clearing service's job).
	bids := []sealedBid{
		{bidder: "winner", amount: 120, salt: "w-salt"},
		{bidder: "loser", amount: 80, salt: "l-salt"},
	}
	// Commit phase: only the hashes are published.
	commitments := make(map[xdeal.Addr][32]byte, len(bids))
	fmt.Println("sealed commitments:")
	for _, b := range bids {
		c := b.commitment()
		commitments[b.bidder] = c
		fmt.Printf("  %-8s -> %x…\n", b.bidder, c[:8])
	}

	// Reveal phase: each revealed (amount, salt) must hash to the
	// published commitment; the high bid wins.
	var winner, loser sealedBid
	for _, revealed := range bids {
		if revealed.commitment() != commitments[revealed.bidder] {
			log.Fatalf("bidder %s revealed a bid that does not match its commitment", revealed.bidder)
		}
		if revealed.amount > winner.amount {
			winner, loser = revealed, winner
		} else if revealed.amount > loser.amount {
			loser = revealed
		}
	}
	fmt.Printf("\nrevealed: winner=%s (%d coins), loser=%s (%d coins)\n\n",
		winner.bidder, winner.amount, loser.bidder, loser.amount)

	// Settlement as one atomic deal: both bids move to the seller, the
	// seller returns the losing bid and hands over the ticket. The seller
	// transfers assets (the loser's refund) that it did not own at the
	// start — a deal, not a swap.
	spec := xdeal.AuctionDeal(2000, 1000, winner.amount, loser.amount)
	fmt.Println(spec.Matrix())

	r, err := xdeal.Run(spec, xdeal.Options{Seed: 7, Protocol: xdeal.CBC, F: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Summary())

	coinKey := "coinchain/coin-escrow"
	fmt.Printf("\nsettlement: seller %+d coins, winner %+d, loser %+d; ticket -> %s\n",
		r.FungibleDelta["seller"][coinKey],
		r.FungibleDelta["winner"][coinKey],
		r.FungibleDelta["loser"][coinKey],
		r.FinalTokenOwners["ticketchain/ticket-escrow"]["lot-1"])

	// A sore loser cannot wreck the settlement for the compliant parties:
	// if the loser refuses to sign off (its refund nets its bid to zero,
	// so it has nothing to escrow — but its vote is still required), the
	// deal aborts atomically and nobody loses assets.
	spec = xdeal.AuctionDeal(2000, 1000, winner.amount, loser.amount)
	r, err = xdeal.Run(spec, xdeal.Options{
		Seed: 8, Protocol: xdeal.CBC, F: 1,
		Behaviors: map[xdeal.Addr]xdeal.Behavior{
			"loser": {AbortImmediately: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- the sore loser votes abort ---")
	fmt.Print(r.Summary())
	if len(r.SafetyViolations) == 0 && r.AllAborted {
		fmt.Println("settlement aborted atomically; nobody lost assets")
	}
}
