// Quickstart: the paper's running example (§1.1).
//
// Alice is a ticket broker. Bob sells two coveted theater tickets for 100
// coins; Carol will pay 101. Alice brokers the deal, entering with no
// assets at all — her outgoing transfers are funded by her incoming ones,
// which is exactly what atomic swaps cannot express and deals can.
//
// The example runs the same deal under both commit protocols and shows
// what happens when Bob tries to walk away with the coins.
package main

import (
	"fmt"
	"log"

	"xdeal"
)

func main() {
	fmt.Println("=== Cross-chain deals quickstart ===")
	fmt.Println()

	// The deal of Figure 1: rows are outgoing transfers, columns incoming.
	spec := xdeal.BrokerDeal(2000, 1000)
	fmt.Println(spec.Matrix())
	fmt.Printf("well-formed (strongly connected digraph): %v\n\n", spec.WellFormed())

	// Timelock protocol (§5): fully decentralized, synchronous model.
	r, err := xdeal.Run(spec, xdeal.Options{Seed: 1, Protocol: xdeal.Timelock})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- timelock protocol ---")
	fmt.Print(r.Summary())
	fmt.Printf("ticket owner: %s\n\n", r.FinalTokenOwners["ticketchain/ticket-escrow"]["seat-1A"])

	// CBC protocol (§6): eventually synchronous, shared certified log.
	spec = xdeal.BrokerDeal(2000, 1000)
	r, err = xdeal.Run(spec, xdeal.Options{Seed: 1, Protocol: xdeal.CBC, F: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- CBC protocol ---")
	fmt.Print(r.Summary())
	fmt.Println()

	// Now Bob cheats: he escrows his tickets but never votes, hoping the
	// coins move anyway. Safety (Property 1) protects Alice and Carol:
	// the deal aborts everywhere and every compliant party is refunded.
	spec = xdeal.BrokerDeal(2000, 1000)
	r, err = xdeal.Run(spec, xdeal.Options{
		Seed:     1,
		Protocol: xdeal.Timelock,
		Behaviors: map[xdeal.Addr]xdeal.Behavior{
			"bob": {SkipVoting: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- bob refuses to vote ---")
	fmt.Print(r.Summary())
	if len(r.SafetyViolations) == 0 {
		fmt.Println("no compliant party ended up worse off (Property 1 held)")
	}
}
