// Watchtower: the §5.3 mitigation, shown end to end.
//
// "Any timelock-based commit protocol has a window during which parties
// may lose their assets by going offline at the wrong time. The Lightning
// payment network employs watchtowers, parties that monitor escrow
// contracts and step in to act on the behalf of off-line parties."
//
// The scenario: Bob votes at the last allowed moment; Alice and Carol are
// driven offline (a denial-of-service attack) before they can forward his
// vote to the ticket chain. Without help, the coin escrow commits while
// the ticket escrow times out — Bob pockets the coins AND keeps his
// tickets. With a watchtower holding Carol's delegation, the vote gets
// forwarded in her name and the whole deal commits.
package main

import (
	"fmt"
	"log"

	"xdeal"
	"xdeal/internal/engine"
	"xdeal/internal/party"
	"xdeal/internal/watchtower"
)

func buildScenario() *engine.World {
	spec := xdeal.BrokerDeal(2000, 1000)
	w, err := engine.Build(spec, engine.Options{
		Seed:     31,
		Protocol: party.ProtoTimelock,
		Behaviors: map[xdeal.Addr]xdeal.Behavior{
			"bob":   {VoteDelay: 2750},                       // votes just before t0+Δ
			"alice": {OfflineFrom: 2500, OfflineUntil: 6500}, // DoS window covers
			"carol": {OfflineFrom: 2500, OfflineUntil: 6500}, // the forwarding deadline
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return w
}

func main() {
	fmt.Println("=== §5.3: the offline window and its watchtower ===")
	fmt.Println()

	// Without a tower: Bob ends up with both assets. The paper calls
	// this outcome "technically correct" — Alice and Carol deviated by
	// failing to claim their assets in time.
	w := buildScenario()
	r := w.Run()
	fmt.Println("--- without a watchtower ---")
	fmt.Print(r.Summary())
	fmt.Printf("ticket owner: %s\n", r.FinalTokenOwners["ticketchain/ticket-escrow"]["seat-1A"])
	fmt.Printf("bob's coin delta: %+d\n", r.FungibleDelta["bob"]["coinchain/coin-escrow"])
	if len(r.SafetyViolations) == 0 {
		fmt.Println("(no Property 1 violation: the offline parties are the deviators)")
	}
	fmt.Println()

	// With a tower watching on Carol's behalf.
	w = buildScenario()
	tower := watchtower.New(watchtower.Config{
		Client:     "carol",
		ClientKeys: w.Keys("carol"),
		Spec:       w.Spec,
		Chains:     w.Chains,
		Sched:      w.Sched,
	})
	tower.Start()
	r = w.Run()
	fmt.Println("--- with carol's watchtower ---")
	fmt.Print(r.Summary())
	fmt.Printf("ticket owner: %s\n", r.FinalTokenOwners["ticketchain/ticket-escrow"]["seat-1A"])
	fmt.Printf("tower forwarded %d vote(s), poked %d refund(s)\n", tower.Forwards, tower.Pokes)
}
