// Adversarial gallery: every deviation from the paper's adversary model,
// applied to the broker deal, with the engine verifying that compliant
// parties never end up worse off (Property 1) and never lose assets to
// permanent escrow (Property 2).
//
// The gallery also demonstrates the two negative results the paper
// argues: naive fixed timeouts break safety (§5's dilemma), and the
// timelock protocol cannot tolerate asynchrony (§6's impossibility),
// while the CBC remains atomic under both.
package main

import (
	"fmt"
	"log"

	"xdeal"
	"xdeal/internal/chain"
	"xdeal/internal/engine"
	"xdeal/internal/party"
)

func run(title string, spec *xdeal.Spec, opts xdeal.Options) *xdeal.Result {
	r, err := xdeal.Run(spec, opts)
	if err != nil {
		log.Fatal(err)
	}
	verdict := "SAFE"
	if len(r.SafetyViolations) > 0 {
		verdict = "SAFETY VIOLATION"
	}
	outcome := "mixed"
	switch {
	case r.AllCommitted:
		outcome = "committed"
	case r.AllAborted:
		outcome = "aborted"
	}
	fmt.Printf("%-46s outcome=%-10s %s\n", title, outcome, verdict)
	return r
}

func main() {
	fmt.Println("=== Deviating-party gallery (broker deal) ===")
	fmt.Println()

	deviations := []struct {
		name string
		b    xdeal.Behavior
	}{
		{"bob skips escrow", xdeal.Behavior{SkipEscrow: true}},
		{"alice skips her transfers", xdeal.Behavior{SkipTransfers: true}},
		{"carol never votes", xdeal.Behavior{SkipVoting: true}},
		{"alice refuses to forward votes", xdeal.Behavior{NoForwarding: true}},
		{"bob crashes mid-deal", xdeal.Behavior{CrashAt: 1000}},
		{"carol votes after every deadline", xdeal.Behavior{VoteDelay: 20000}},
	}

	fmt.Println("--- timelock protocol ---")
	who := []xdeal.Addr{"bob", "alice", "carol", "alice", "bob", "carol"}
	for i, d := range deviations {
		spec := xdeal.BrokerDeal(2000, 1000)
		run(d.name, spec, xdeal.Options{
			Seed:     uint64(i + 1),
			Protocol: xdeal.Timelock,
			Behaviors: map[xdeal.Addr]xdeal.Behavior{
				who[i]: d.b,
			},
		})
	}

	fmt.Println()
	fmt.Println("--- CBC protocol (plus CBC-specific attacks) ---")
	cbcDeviations := append(deviations, []struct {
		name string
		b    xdeal.Behavior
	}{
		{"bob votes abort immediately", xdeal.Behavior{AbortImmediately: true}},
		{"carol rescinds right after committing", xdeal.Behavior{CommitThenAbort: 1}},
	}...)
	cbcWho := append(who, "bob", "carol")
	for i, d := range cbcDeviations {
		spec := xdeal.BrokerDeal(2000, 1000)
		run(d.name, spec, xdeal.Options{
			Seed:     uint64(i + 1),
			Protocol: xdeal.CBC,
			F:        1,
			Behaviors: map[xdeal.Addr]xdeal.Behavior{
				cbcWho[i]: d.b,
			},
		})
	}

	fmt.Println()
	fmt.Println("--- the ablations: why the design is the way it is ---")

	// Naive fixed timeouts (§5's dilemma): a last-minute voter splits the
	// outcome across escrows.
	countBroken := func(fixed bool) (broken, runs int) {
		for _, voteDelay := range []xdeal.Duration{2860, 2880, 2900, 2920} {
			for seed := uint64(0); seed < 20; seed++ {
				spec := xdeal.RingDeal(3, 2000, 1000)
				r, err := engine.Build(spec, engine.Options{
					Seed:         seed,
					Protocol:     party.ProtoTimelock,
					FixedTimeout: fixed,
					Behaviors: map[chain.Addr]party.Behavior{
						"p00": {VoteDelay: voteDelay},
					},
				})
				if err != nil {
					log.Fatal(err)
				}
				res := r.Run()
				runs++
				if !res.Atomic() || len(res.SafetyViolations) > 0 {
					broken++
				}
			}
		}
		return broken, runs
	}
	broken, runs := countBroken(true)
	fmt.Printf("%-46s %d of %d runs produced inconsistent outcomes\n",
		"fixed (path-independent) timeouts:", broken, runs)
	broken, runs = countBroken(false)
	fmt.Printf("%-46s %d of %d runs produced inconsistent outcomes\n",
		"path-scaled timeouts (t0 + |p|·Δ):", broken, runs)
}
